//! Lock-free peer-list snapshots — the serving layer's read path.
//!
//! The paper's whole point (§1/§3) is that the collected peer list is a
//! *queryable local database*: "the more pointers a node collects, the
//! more satisfactory partners it may find locally". A query service over
//! that database must keep answering at high QPS while the protocol
//! churns the underlying list, which forbids sharing the mutable
//! [`PeerList`] with readers: a reader that takes the protocol's lock
//! stalls failure detection, and a reader that doesn't risks a torn list.
//!
//! The contract here is *publication*: the protocol side captures an
//! immutable [`PeerSnapshot`] whenever the list changed (detected through
//! [`PeerList::generation`]) and publishes it through a [`Published`]
//! cell. Readers [`Published::load`] an `Arc` of the latest snapshot —
//! never the write lock, never a half-updated list — and hold it for as
//! long as the query runs; the protocol keeps mutating and publishing
//! underneath without ever waiting on them.
//!
//! ## The cell
//!
//! `std` has no `arc-swap` and the workspace forbids `unsafe`, so the
//! cell is a small slot ring: [`SLOTS`] inner locks each guarding an
//! `Arc<T>`, plus an atomic version whose low bits select the slot that
//! holds the newest value. A writer prepares `version + 1`'s slot *before*
//! bumping the version, so the slot named by the current version is never
//! being written. Readers therefore succeed with a single `try_read`
//! (uncontended: nothing writes that slot) unless the writer laps the
//! whole ring between the reader's version load and its slot access —
//! `SLOTS - 1` publications inside a window of a few instructions — in
//! which case the reader revalidates and retries. Readers never block
//! writers except in that same pathological lap case, and never wait on a
//! lock held across a mutation.
//!
//! The version check after cloning keeps loads *monotone*: a reader that
//! observed epoch `e` can never subsequently observe an epoch `< e`,
//! which the churn tests assert.
//!
//! ## What a snapshot promises
//!
//! * **Atomicity** — the pointer vector is a fixed-point copy of the list
//!   after some prefix of the protocol's mutation sequence; concurrent
//!   readers may observe different prefixes but never a mix.
//! * **Self-consistency** — `me`, `addr`, `scope`, and `level` were all
//!   read at the same instant as the list.
//! * **Monotone epochs** — `epoch` strictly increases across
//!   publications from one [`SnapshotPublisher`].
//! * **Order** — `pointers` is sorted by [`NodeId`], same as the list's
//!   probing circle, so prefix slices are contiguous ranges.

use crate::id::{NodeId, Prefix};
use crate::level::{Level, NodeIdentity};
use crate::node::NodeMachine;
use crate::peer_list::PeerList;
use crate::pointer::{Addr, Pointer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Ring size of a [`Published`] cell. Readers only retry when a writer
/// completes `SLOTS - 1` publications between two adjacent reader
/// instructions; 4 makes that practically impossible while keeping the
/// cell at half a cache line of lock words.
pub const SLOTS: usize = 4;

/// An immutable, cheaply-cloneable view of one node's peer list at a
/// publication instant. Shared as `Arc<PeerSnapshot>`; cloning the `Arc`
/// is the unit of snapshot distribution, cloning the struct copies the
/// pointer vector.
#[derive(Clone, Debug)]
pub struct PeerSnapshot {
    /// Publication counter, strictly increasing per publisher.
    pub epoch: u64,
    /// Protocol time (µs) at which this snapshot was captured.
    pub at_us: u64,
    /// The publishing node's identity (id + level) at capture time.
    pub me: NodeIdentity,
    /// The publishing node's transport address.
    pub addr: Addr,
    /// The eigenstring scope the list covers.
    pub scope: Prefix,
    /// [`PeerList::generation`] at capture time (diagnostic: lets an
    /// embedder correlate a snapshot with the mutation counter).
    pub generation: u64,
    /// All pointers, sorted by [`NodeId`].
    pointers: Vec<Pointer>,
}

impl PeerSnapshot {
    /// The empty snapshot a fresh [`Published`] cell starts with: epoch
    /// 0, no pointers, an anonymous identity.
    pub fn empty() -> Self {
        PeerSnapshot {
            epoch: 0,
            at_us: 0,
            me: NodeIdentity::new(NodeId(0), Level::MAX),
            addr: Addr(0),
            scope: Prefix::EMPTY,
            generation: 0,
            pointers: Vec::new(),
        }
    }

    /// Captures a snapshot from explicit parts (harnesses that drive a
    /// bare [`PeerList`] rather than a whole machine).
    pub fn capture(epoch: u64, at_us: u64, me: NodeIdentity, addr: Addr, list: &PeerList) -> Self {
        PeerSnapshot {
            epoch,
            at_us,
            me,
            addr,
            scope: list.scope(),
            generation: list.generation(),
            pointers: list.iter().cloned().collect(),
        }
    }

    /// Captures a snapshot of a machine's current list and identity.
    pub fn capture_machine(epoch: u64, at_us: u64, m: &NodeMachine) -> Self {
        Self::capture(
            epoch,
            at_us,
            NodeIdentity::new(m.id(), m.level()),
            m.addr(),
            m.peers(),
        )
    }

    /// All pointers, sorted by [`NodeId`].
    #[inline]
    pub fn pointers(&self) -> &[Pointer] {
        &self.pointers
    }

    /// Number of pointers held.
    #[inline]
    pub fn len(&self) -> usize {
        self.pointers.len()
    }

    /// Whether the snapshot holds no pointers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pointers.is_empty()
    }

    /// Looks up a pointer by id (binary search over the sorted vector).
    pub fn get(&self, id: NodeId) -> Option<&Pointer> {
        self.pointers
            .binary_search_by_key(&id, |p| p.id)
            .ok()
            .map(|i| &self.pointers[i])
    }

    /// The contiguous slice of pointers whose ids fall inside `prefix`.
    pub fn prefix_slice(&self, prefix: Prefix) -> &[Pointer] {
        let range = prefix.id_range();
        let lo = self.pointers.partition_point(|p| p.id < *range.start());
        let hi = self.pointers.partition_point(|p| p.id <= *range.end());
        &self.pointers[lo..hi]
    }

    /// Up to `k` pointers at the strongest levels (§3's "powerful nodes"
    /// heuristic), strongest level first, ties by smallest id. Core-level
    /// so thin embedders (the transport control port) can serve it
    /// without the application-layer query engine.
    pub fn strongest(&self, k: usize) -> Vec<&Pointer> {
        let mut all: Vec<&Pointer> = self.pointers.iter().collect();
        all.sort_by_key(|p| (p.level.value(), p.id));
        all.truncate(k);
        all
    }

    /// Asserts the structural invariants every published snapshot must
    /// hold (sorted, deduplicated ids). Cheap; used by tests and debug
    /// assertions in the publisher.
    pub fn is_well_formed(&self) -> bool {
        self.pointers.windows(2).all(|w| w[0].id < w[1].id)
    }
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    // A poisoned inner lock means a reader panicked while cloning an Arc
    // (which cannot leave the Arc torn) — the value is still intact, so
    // publication and loads keep working rather than cascading the panic.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// An arc-swap-style publication cell: single-writer (serialized by an
/// internal mutex), many readers, readers never take the write lock and
/// never observe a torn value. See the module docs for the slot-ring
/// design.
#[derive(Debug)]
pub struct Published<T> {
    slots: [RwLock<Arc<T>>; SLOTS],
    /// Low bits select the slot holding the newest value; the whole word
    /// is the publication count. audit note: release-store in `publish`
    /// pairs with the acquire-loads in `load`, ordering the slot write
    /// before the version bump.
    version: AtomicU64,
    /// Serializes writers so version increments match slot contents.
    writer: Mutex<()>,
}

impl<T> Published<T> {
    /// A cell currently holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Published {
            slots: std::array::from_fn(|_| RwLock::new(Arc::clone(&initial))),
            version: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Publishes a new value; returns the cell version it landed at.
    /// Writers are serialized; readers are never waited on except when a
    /// reader is `SLOTS - 1` publications stale (see module docs).
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let _w = unpoison(self.writer.lock());
        let v = self.version.load(Ordering::Relaxed);
        let next = v + 1;
        let slot = (next % SLOTS as u64) as usize;
        *unpoison(self.slots[slot].write()) = value;
        self.version.store(next, Ordering::Release);
        next
    }

    /// Loads the latest published value. Wait-free in the absence of a
    /// writer lapping the entire slot ring mid-load; never blocks on the
    /// writer (a `try_read` miss just retries against the newer version).
    pub fn load(&self) -> Arc<T> {
        loop {
            let v = self.version.load(Ordering::Acquire);
            let slot = (v % SLOTS as u64) as usize;
            if let Ok(guard) = self.slots[slot].try_read() {
                let value = Arc::clone(&guard);
                drop(guard);
                // Monotonicity guard: if the writer has advanced far
                // enough to be rewriting this slot since we sampled `v`,
                // the clone might belong to version v + SLOTS — retry so
                // a reader never observes versions out of order.
                if self.version.load(Ordering::Acquire) < v + (SLOTS as u64 - 1) {
                    return value;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// The current cell version (number of publications so far).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A reader handle onto one node's published snapshots: a cheaply
/// cloneable `Arc` of the [`Published`] cell.
#[derive(Clone, Debug)]
pub struct SnapshotReader {
    cell: Arc<Published<PeerSnapshot>>,
}

impl SnapshotReader {
    /// The latest published snapshot.
    #[inline]
    pub fn load(&self) -> Arc<PeerSnapshot> {
        self.cell.load()
    }

    /// The epoch of the latest published snapshot without loading it
    /// (the cell version equals the snapshot epoch by construction).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.cell.version()
    }
}

/// The write side of one node's snapshot path. Owned by whatever drives
/// the [`NodeMachine`] (a simulator shard, the UDP runtime's node
/// thread); after every handled input it calls [`Self::maybe_publish`],
/// which captures and publishes only when the list actually changed.
#[derive(Debug)]
pub struct SnapshotPublisher {
    cell: Arc<Published<PeerSnapshot>>,
    /// [`PeerList::content_generation`] at the last publication;
    /// `u64::MAX` forces the first `maybe_publish` to publish. Gating on
    /// the *content* counter keeps the steady-state hot path free: §4.6
    /// probe acks only touch refresh stamps, which no serving-layer
    /// query observes, so they cost one integer compare instead of an
    /// O(n) capture. (A published pointer's `last_refresh_us` may
    /// therefore trail the live list's by up to one content change.)
    last_generation: u64,
    epoch: u64,
}

impl Default for SnapshotPublisher {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotPublisher {
    /// A publisher over a fresh cell holding [`PeerSnapshot::empty`].
    pub fn new() -> Self {
        SnapshotPublisher {
            cell: Arc::new(Published::new(Arc::new(PeerSnapshot::empty()))),
            last_generation: u64::MAX,
            epoch: 0,
        }
    }

    /// A reader handle onto this publisher's cell.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// Epoch of the most recent publication (0 before the first).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Captures and publishes the machine's current list if its content
    /// generation moved since the last publication (membership, level,
    /// info, or scope changes — refresh-stamp touches don't count).
    /// Returns `true` when a snapshot was published. Pure observation:
    /// never mutates the machine, so enabling publication cannot change
    /// a simulation's fingerprint.
    pub fn maybe_publish(&mut self, m: &NodeMachine, now_us: u64) -> bool {
        let content = m.peers().content_generation();
        if content == self.last_generation {
            return false;
        }
        self.epoch += 1;
        let snap = PeerSnapshot::capture_machine(self.epoch, now_us, m);
        self.last_generation = content;
        debug_assert!(snap.is_well_formed());
        self.cell.publish(Arc::new(snap));
        true
    }

    /// Captures and publishes from explicit parts (harnesses driving a
    /// bare [`PeerList`]). Generation-gated like [`Self::maybe_publish`].
    pub fn maybe_publish_list(
        &mut self,
        me: NodeIdentity,
        addr: Addr,
        list: &PeerList,
        now_us: u64,
    ) -> bool {
        let content = list.content_generation();
        if content == self.last_generation {
            return false;
        }
        self.epoch += 1;
        let snap = PeerSnapshot::capture(self.epoch, now_us, me, addr, list);
        self.last_generation = content;
        debug_assert!(snap.is_well_formed());
        self.cell.publish(Arc::new(snap));
        true
    }
}

/// A registry of snapshot readers for multi-node harnesses (the
/// simulators): actor id → reader. Shards register each actor's cell
/// once at publisher creation; readers look up concurrently.
#[derive(Debug, Default)]
pub struct SnapshotDirectory {
    readers: Mutex<BTreeMap<u32, SnapshotReader>>,
}

impl SnapshotDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or re-creates, after a crash-restart reusing the actor
    /// slot) the publisher for `actor`, registering its reader.
    pub fn register(&self, actor: u32) -> SnapshotPublisher {
        let publisher = SnapshotPublisher::new();
        unpoison(self.readers.lock()).insert(actor, publisher.reader());
        publisher
    }

    /// The reader for `actor`, if it ever registered.
    pub fn reader(&self, actor: u32) -> Option<SnapshotReader> {
        unpoison(self.readers.lock()).get(&actor).cloned()
    }

    /// Actors with a registered reader, ascending.
    pub fn actors(&self) -> Vec<u32> {
        unpoison(self.readers.lock()).keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn ptr(id: u128, level: u8) -> Pointer {
        Pointer::new(NodeId(id), Addr(id as u64), Level::new(level))
    }

    #[test]
    fn published_cell_swaps_values() {
        let cell = Published::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.publish(Arc::new(2)), 1);
        assert_eq!(*cell.load(), 2);
        for i in 3..20u32 {
            cell.publish(Arc::new(i));
            assert_eq!(*cell.load(), i);
        }
        assert_eq!(cell.version(), 18);
    }

    #[test]
    fn loads_are_monotone_under_concurrent_publication() {
        let cell = Arc::new(Published::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                let mut observed = 0u64;
                // Load before checking `stop`: on a single-core host the
                // writer can finish before this thread first runs, and
                // every reader must still observe at least one value.
                loop {
                    let v = *cell.load();
                    assert!(v >= last, "load went backwards: {v} < {last}");
                    last = v;
                    observed += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                observed
            }));
        }
        for i in 1..=50_000u64 {
            cell.publish(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(*cell.load(), 50_000);
    }

    #[test]
    fn publisher_is_generation_gated() {
        let mut list = PeerList::new(Prefix::EMPTY);
        let me = NodeIdentity::new(NodeId(7), Level::new(0));
        let mut publisher = SnapshotPublisher::new();
        let reader = publisher.reader();

        // First publish happens even on an empty list (epoch 1).
        assert!(publisher.maybe_publish_list(me, Addr(7), &list, 10));
        assert!(!publisher.maybe_publish_list(me, Addr(7), &list, 20));
        assert_eq!(reader.load().epoch, 1);

        list.insert(ptr(1, 0));
        assert!(publisher.maybe_publish_list(me, Addr(7), &list, 30));
        let snap = reader.load();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.at_us, 30);
        assert_eq!(snap.len(), 1);
        assert!(snap.get(NodeId(1)).is_some());
        assert!(snap.get(NodeId(2)).is_none());

        // No mutation → no publication, reader keeps the old snapshot.
        assert!(!publisher.maybe_publish_list(me, Addr(7), &list, 40));
        assert_eq!(reader.load().epoch, 2);

        // touch() is NOT a content mutation: refresh stamps are invisible
        // to serving-layer queries, and gating them out keeps the §4.6
        // probe-ack hot path at one integer compare.
        list.touch(NodeId(1), 50);
        assert!(!publisher.maybe_publish_list(me, Addr(7), &list, 50));
        assert_eq!(reader.load().epoch, 2);

        // A level change is content: it publishes.
        assert!(list.update_level(NodeId(1), Level::new(3)));
        assert!(publisher.maybe_publish_list(me, Addr(7), &list, 60));
        assert_eq!(reader.load().epoch, 3);
    }

    #[test]
    fn snapshot_prefix_slice_matches_list_ranges() {
        let mut list = PeerList::new(Prefix::EMPTY);
        for i in 0..64u128 {
            list.insert(ptr(i << 121, (i % 4) as u8));
        }
        let snap = PeerSnapshot::capture(
            1,
            0,
            NodeIdentity::new(NodeId(0), Level::new(0)),
            Addr(0),
            &list,
        );
        assert!(snap.is_well_formed());
        for bits in ["0", "1", "01", "101", "0000"] {
            let prefix = Prefix::from_bits_str(bits).unwrap();
            let from_list: Vec<NodeId> = list.iter_prefix(prefix).map(|p| p.id).collect();
            let from_snap: Vec<NodeId> = snap.prefix_slice(prefix).iter().map(|p| p.id).collect();
            assert_eq!(from_list, from_snap, "prefix {bits}");
        }
    }

    #[test]
    fn strongest_matches_level_then_id_order() {
        let mut list = PeerList::new(Prefix::EMPTY);
        list.insert(ptr(10, 3));
        list.insert(ptr(20, 0));
        list.insert(ptr(30, 1));
        list.insert(ptr(40, 0));
        let snap = PeerSnapshot::capture(
            1,
            0,
            NodeIdentity::new(NodeId(0), Level::new(0)),
            Addr(0),
            &list,
        );
        let ids: Vec<u128> = snap.strongest(3).iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![20, 40, 30]);
    }

    #[test]
    fn directory_registers_and_resolves() {
        let dir = SnapshotDirectory::new();
        assert!(dir.reader(3).is_none());
        let mut p = dir.register(3);
        let list = PeerList::new(Prefix::EMPTY);
        p.maybe_publish_list(
            NodeIdentity::new(NodeId(3), Level::new(0)),
            Addr(3),
            &list,
            5,
        );
        let r = dir.reader(3).expect("registered");
        assert_eq!(r.load().epoch, 1);
        assert_eq!(dir.actors(), vec![3]);
    }
}
