//! Top-node lists and their lazy maintenance (§2, §4.5).
//!
//! Every node keeps pointers to `t` top nodes of its part (commonly
//! `t = 8`), so that state-changing events and failure reports can be
//! handed to a top node for multicast. The list is refreshed lazily:
//! every report response piggybacks `t−1` fresh top-node pointers; a
//! failed report is redirected to the next entry; when all entries are
//! stale the node falls back to asking a peer for its list.

use crate::id::NodeId;
use crate::multicast::Target;
use serde::{Deserialize, Serialize};

/// A node's list of known top nodes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TopList {
    capacity: usize,
    entries: Vec<Target>,
}

impl TopList {
    /// Creates an empty list with the given capacity (`t`).
    pub fn new(capacity: usize) -> Self {
        TopList {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Capacity `t`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries, most recently refreshed first.
    #[inline]
    pub fn entries(&self) -> &[Target] {
        &self.entries
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty (the node must fall back to a peer).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges freshly learned top-node pointers (piggybacked on a report
    /// response, §4.5). New entries go to the front; duplicates are
    /// refreshed in place; the list is truncated to capacity.
    pub fn refresh(&mut self, fresh: impl IntoIterator<Item = Target>) {
        for t in fresh {
            self.entries.retain(|e| e.id != t.id);
            self.entries.insert(0, t);
        }
        self.entries.truncate(self.capacity);
    }

    /// Picks a top node to report to. `pick` supplies a pseudo-random index
    /// (the paper chooses "randomly from its top-node list"); entries in
    /// `dead` (already timed out this attempt) are skipped.
    pub fn choose(&self, dead: &[NodeId], pick: impl FnOnce(usize) -> usize) -> Option<Target> {
        let live: Vec<&Target> = self
            .entries
            .iter()
            .filter(|e| !dead.contains(&e.id))
            .collect();
        if live.is_empty() {
            return None;
        }
        let idx = pick(live.len()) % live.len();
        Some(*live[idx])
    }

    /// Drops an entry that failed to respond.
    pub fn remove(&mut self, id: NodeId) {
        self.entries.retain(|e| e.id != id);
    }

    /// Updates the recorded level of an entry (driven by LevelShift and
    /// Refresh events — a stale level here misroutes reports).
    pub fn note_level(&mut self, id: NodeId, level: crate::level::Level) {
        for e in &mut self.entries {
            if e.id == id {
                e.level = level;
            }
        }
    }

    /// Entries to piggyback on a response: up to `t − 1` of our own
    /// entries, excluding `recipient`'s own id.
    pub fn piggyback(&self, recipient: NodeId) -> Vec<Target> {
        self.entries
            .iter()
            .filter(|e| e.id != recipient)
            .take(self.capacity.saturating_sub(1))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;
    use crate::pointer::Addr;

    fn t(i: u128) -> Target {
        Target {
            id: NodeId(i),
            addr: Addr(i as u64),
            level: Level::TOP,
        }
    }

    #[test]
    fn refresh_dedupes_and_truncates() {
        let mut l = TopList::new(3);
        l.refresh([t(1), t(2), t(3)]);
        assert_eq!(l.len(), 3);
        l.refresh([t(2), t(4)]);
        let ids: Vec<u128> = l.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![4, 2, 3]); // 1 fell off the end
    }

    #[test]
    fn choose_skips_dead_entries() {
        let mut l = TopList::new(4);
        l.refresh([t(1), t(2), t(3)]);
        let chosen = l.choose(&[NodeId(3), NodeId(2)], |_| 0).unwrap();
        assert_eq!(chosen.id, NodeId(1));
        assert!(l
            .choose(&[NodeId(1), NodeId(2), NodeId(3)], |_| 0)
            .is_none());
    }

    #[test]
    fn choose_uses_pick_modulo() {
        let mut l = TopList::new(4);
        l.refresh([t(1), t(2)]);
        // entries are [2, 1]; pick(2)=5 → 5 % 2 = 1 → entry 1.
        let chosen = l.choose(&[], |n| {
            assert_eq!(n, 2);
            5
        });
        assert_eq!(chosen.unwrap().id, NodeId(1));
    }

    #[test]
    fn piggyback_excludes_recipient_and_caps_at_t_minus_1() {
        let mut l = TopList::new(3);
        l.refresh([t(1), t(2), t(3)]);
        let pb = l.piggyback(NodeId(2));
        let ids: Vec<u128> = pb.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 1]);
        assert!(pb.len() <= 2);
    }

    #[test]
    fn remove_failed_entry() {
        let mut l = TopList::new(3);
        l.refresh([t(1), t(2)]);
        l.remove(NodeId(2));
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].id, NodeId(1));
    }
}
