//! Pointers — the unit of collected information.
//!
//! "A pointer consists of the corresponding node's IP address, nodeId,
//! level, and a piece of attached info that can be specified by upper
//! applications" (§2). The attached info is opaque to the protocol; upper
//! layers use it for OS versions, shared-file counts, load, bids, bloom
//! filters, … (§3). Pointers should stay small, since large pointers
//! deflate the peer lists.

use crate::id::NodeId;
use crate::level::{Level, NodeIdentity};
use bytes::Bytes;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A transport address: an opaque 64-bit value wide enough for an
/// IPv4 address + UDP port (see `peerwindow-transport`). In simulation it
/// indexes the topology's attachment point.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// Packs an IPv4 socket address (`a.b.c.d:port`).
    pub fn from_v4(ip: [u8; 4], port: u16) -> Addr {
        Addr(((u32::from_be_bytes(ip) as u64) << 16) | port as u64)
    }

    /// Unpacks into `(ip, port)`; the inverse of [`Addr::from_v4`].
    pub fn to_v4(self) -> ([u8; 4], u16) {
        (((self.0 >> 16) as u32).to_be_bytes(), self.0 as u16)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{}", self.0)
    }
}

/// A pointer to another node: one entry of a peer list.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Pointer {
    /// The target node's identifier.
    pub id: NodeId,
    /// The target node's transport address.
    pub addr: Addr,
    /// The target node's level, as last heard.
    pub level: Level,
    /// Application-attached info (§3); opaque, cheaply cloneable.
    pub info: Bytes,
    /// Protocol time (µs) at which this pointer was last confirmed by a
    /// multicast event or refresh (§4.6). Entries not refreshed for
    /// `3 · LT_m` are dropped without explicit probing.
    pub last_refresh_us: u64,
    /// Protocol time (µs) at which the target was first seen (its join
    /// time, when known). Used to measure per-level lifetimes `LT_l`
    /// for the §4.6 refresh mechanism.
    pub first_seen_us: u64,
}

impl Pointer {
    /// Creates a pointer with empty attached info.
    pub fn new(id: NodeId, addr: Addr, level: Level) -> Self {
        Pointer {
            id,
            addr,
            level,
            info: Bytes::new(),
            last_refresh_us: 0,
            first_seen_us: 0,
        }
    }

    /// Creates a pointer with attached info.
    pub fn with_info(id: NodeId, addr: Addr, level: Level, info: Bytes) -> Self {
        Pointer {
            id,
            addr,
            level,
            info,
            last_refresh_us: 0,
            first_seen_us: 0,
        }
    }

    /// The identity (id + level) this pointer describes.
    #[inline]
    pub fn identity(&self) -> NodeIdentity {
        NodeIdentity::new(self.id, self.level)
    }

    /// Approximate wire size in bits, for bandwidth accounting: 128-bit id,
    /// 48-bit address (IPv4 + port), 8-bit level, plus the attached info.
    #[inline]
    pub fn wire_bits(&self) -> u64 {
        128 + 48 + 8 + (self.info.len() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bits_counts_info() {
        let p = Pointer::new(NodeId(1), Addr(0), Level::TOP);
        assert_eq!(p.wire_bits(), 184);
        let q = Pointer::with_info(NodeId(1), Addr(0), Level::TOP, Bytes::from_static(b"abcd"));
        assert_eq!(q.wire_bits(), 184 + 32);
    }

    #[test]
    fn addr_packs_socket_v4() {
        let a = Addr::from_v4([127, 0, 0, 1], 7001);
        assert_eq!(a.to_v4(), ([127, 0, 0, 1], 7001));
        let b = Addr::from_v4([255, 255, 255, 255], 65535);
        assert_eq!(b.to_v4(), ([255, 255, 255, 255], 65535));
        assert_ne!(a, b);
    }

    #[test]
    fn identity_reflects_fields() {
        let p = Pointer::new(NodeId(42), Addr(7), Level::new(3));
        assert_eq!(p.identity(), NodeIdentity::new(NodeId(42), Level::new(3)));
    }
}
