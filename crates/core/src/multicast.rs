//! Tree-based multicast (§4.2).
//!
//! When a top node starts to multicast an event about node `X`, the message
//! spreads by binary dissection of the identifier space: at step `s` every
//! informed node sends the event to one more node whose nodeId shares its
//! first `s` bits and differs at the next bit, always choosing "a target
//! node with the highest level from all possible nodes" — i.e. the
//! strongest audience-set member of `X` in the flipped half. The tree is
//! not pre-determined; every node picks its next target at runtime from its
//! own peer list.
//!
//! This module is *pure*: it computes forwarding decisions from a view of
//! the membership ([`AudienceView`]) without performing I/O, so the same
//! logic drives the sans-IO node machine (full fidelity), the oracle-mode
//! simulator, and the property tests.

use crate::id::{NodeId, Prefix, ID_BITS};
use crate::level::Level;
use crate::peer_list::PeerList;
use crate::pointer::Addr;
use serde::{Deserialize, Serialize};

/// A forwarding target: the minimum a sender must know to address it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Target {
    /// Target node id.
    pub id: NodeId,
    /// Target transport address.
    pub addr: Addr,
    /// Target level as known to the sender.
    pub level: Level,
}

/// A queryable view of the membership, as seen by one forwarding node.
///
/// Implemented by [`PeerList`] (a node's own, possibly erroneous knowledge)
/// and by the oracle directory in `peerwindow-sim` (ground truth).
pub trait AudienceView {
    /// The strongest (smallest level value) audience-set member of
    /// `changing` whose id lies in `range`, excluding `exclude` and
    /// `changing` itself; ties broken by smallest id.
    fn strongest_audience_in_range(
        &self,
        range: Prefix,
        changing: NodeId,
        exclude: NodeId,
    ) -> Option<Target>;

    /// Whether any audience-set member of `changing` (≠ `exclude`,
    /// ≠ `changing`) lies in `range`.
    fn any_audience_in_range(&self, range: Prefix, changing: NodeId, exclude: NodeId) -> bool {
        self.strongest_audience_in_range(range, changing, exclude)
            .is_some()
    }
}

impl AudienceView for PeerList {
    fn strongest_audience_in_range(
        &self,
        range: Prefix,
        changing: NodeId,
        exclude: NodeId,
    ) -> Option<Target> {
        PeerList::strongest_audience_in_range(self, range, changing, exclude).map(|p| Target {
            id: p.id,
            addr: p.addr,
            level: p.level,
        })
    }
}

/// One send decided by [`forward_steps`]: forward the event to `target`,
/// which becomes responsible for the id range of length `next_step`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Forward {
    /// Range length the *receiver* is responsible for (its `step`).
    pub next_step: u8,
    /// Where to send.
    pub target: Target,
}

/// Computes every forward a node makes after receiving (or initiating) the
/// multicast of an event about `changing`, per the §4.2 rules.
///
/// `local` is the forwarding node's id and `step` the length of the id
/// range it is responsible for: its level for the initiating top node, or
/// the `next_step` carried by the message that reached it. The returned
/// forwards are ordered by increasing step (the order the node sends them).
///
/// The §4.2 stop rule "until no more appropriate node can be found" is
/// interpreted as: stop once the node's remaining responsibility range
/// holds no other audience member (empty *sibling* half-ranges are skipped,
/// not terminal — otherwise members deeper on the node's own side would be
/// unreachable).
pub fn forward_steps<V: AudienceView>(
    view: &V,
    local: NodeId,
    step: u8,
    changing: NodeId,
) -> Vec<Forward> {
    let mut out = Vec::new();
    for s in step..ID_BITS {
        let remaining = local.prefix(s);
        if !view.any_audience_in_range(remaining, changing, local) {
            break;
        }
        let flipped = remaining.child(!local.bit(s));
        if let Some(target) = view.strongest_audience_in_range(flipped, changing, local) {
            out.push(Forward {
                next_step: s + 1,
                target,
            });
        }
    }
    out
}

/// Picks a replacement target after a failed send (§4.2: after three
/// unanswered attempts the pointer is removed and the message redirected).
/// `range` is the flipped range of the failed send; `dead` contains ids
/// already tried. Returns the strongest remaining candidate.
pub fn redirect_target<V: AudienceView>(
    view: &V,
    range: Prefix,
    changing: NodeId,
    local: NodeId,
    dead: &[NodeId],
) -> Option<Target> {
    // The view is expected to have dropped `dead` already (the failed
    // pointer is removed before redirecting); this fallback skips them in
    // case the caller retries before mutating its list.
    let t = view.strongest_audience_in_range(range, changing, local)?;
    if dead.contains(&t.id) {
        None
    } else {
        Some(t)
    }
}

/// One edge of a fully planned multicast tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeEdge {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: Target,
    /// Range length the receiver becomes responsible for.
    pub step: u8,
    /// Hop count from the root (root's children have depth 1).
    pub depth: u32,
}

/// Plans the complete multicast tree for an event about `changing`, rooted
/// at `root` (a top node of the subject's part) with responsibility range
/// length `root_step` (the root's level). Requires a *consistent* view —
/// ground truth in oracle mode, or any single node's list in tests.
///
/// Returns the edges in breadth-first order. With a consistent view the
/// receivers are exactly the audience set minus `{root, changing}`, each
/// reached once (asserted by the property tests).
pub fn plan_tree<V: AudienceView>(
    view: &V,
    root: NodeId,
    root_step: u8,
    changing: NodeId,
) -> Vec<TreeEdge> {
    let mut edges = Vec::new();
    // (node, step, depth) work queue.
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((root, root_step, 0u32));
    while let Some((node, step, depth)) = queue.pop_front() {
        for f in forward_steps(view, node, step, changing) {
            edges.push(TreeEdge {
                from: node,
                to: f.target,
                step: f.next_step,
                depth: depth + 1,
            });
            queue.push_back((f.target.id, f.next_step, depth + 1));
        }
    }
    edges
}

/// Summary statistics of a planned tree (§4.2 properties 2–3: the root has
/// ≈ log₂N out-degree and the tree has ≈ log₂N depth).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TreeStats {
    /// Number of receivers (edges).
    pub receivers: usize,
    /// Maximum depth.
    pub max_depth: u32,
    /// Maximum out-degree over all senders.
    pub max_out_degree: usize,
    /// Out-degree of the root.
    pub root_out_degree: usize,
}

/// Computes [`TreeStats`] for a planned tree rooted at `root`.
pub fn tree_stats(edges: &[TreeEdge], root: NodeId) -> TreeStats {
    use std::collections::BTreeMap;
    let mut out: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut max_depth = 0;
    for e in edges {
        *out.entry(e.from).or_default() += 1;
        max_depth = max_depth.max(e.depth);
    }
    TreeStats {
        receivers: edges.len(),
        max_depth,
        max_out_degree: out.values().copied().max().unwrap_or(0),
        root_out_degree: out.get(&root).copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::NodeIdentity;
    use crate::pointer::Pointer;
    use std::collections::BTreeSet;

    fn nid(bits: &str) -> NodeId {
        Prefix::from_bits_str(bits).unwrap().range_start()
    }

    fn figure1_list() -> PeerList {
        let mut list = PeerList::new(Prefix::EMPTY);
        for (bits, level) in [
            ("0010", 0),
            ("0111", 0),
            ("0100", 2),
            ("1101", 1),
            ("1011", 1),
            ("0110", 2),
            ("0000", 2),
            ("1010", 2),
            ("0011", 2),
            ("1000", 3),
        ] {
            let id = nid(bits);
            list.insert(Pointer::new(id, Addr(0), Level::new(level)));
        }
        list
    }

    #[test]
    fn tree_covers_exact_audience_of_paper_example() {
        let list = figure1_list();
        let changing = nid("1011"); // node E
        let root = nid("0010"); // top node A
        let edges = plan_tree(&list, root, 0, changing);
        let reached: BTreeSet<NodeId> = edges.iter().map(|e| e.to.id).collect();
        // Audience of E = {A, B, D, E, H}; minus root A and subject E.
        let expect: BTreeSet<NodeId> = [nid("0111"), nid("1101"), nid("1010")]
            .into_iter()
            .collect();
        assert_eq!(reached, expect);
        // Exactly-once delivery.
        assert_eq!(reached.len(), edges.len());
    }

    #[test]
    fn messages_flow_stronger_to_weaker() {
        // §4.2 property 1. Senders' levels (as known in the list) must be
        // ≤ receivers' levels along every edge.
        let list = figure1_list();
        let changing = nid("1011");
        let root = nid("0010");
        let level_of = |id: NodeId| list.get(id).unwrap().level;
        for e in plan_tree(&list, root, 0, changing) {
            assert!(
                level_of(e.from).at_least_as_strong_as(e.to.level),
                "edge {:?} flows weaker→stronger",
                e
            );
        }
    }

    #[test]
    fn forward_steps_skip_empty_sibling_ranges() {
        // Root A (0010) multicasting about E (1011): A's step-0 send goes
        // into the "1…" half; step-1 flipped range "01" holds top node B;
        // step-2 flipped range "000" holds only non-audience G, so it is
        // skipped, and recursion still terminates.
        let list = figure1_list();
        let fw = forward_steps(&list, nid("0010"), 0, nid("1011"));
        let steps: Vec<u8> = fw.iter().map(|f| f.next_step).collect();
        let ids: Vec<NodeId> = fw.iter().map(|f| f.target.id).collect();
        assert_eq!(steps, vec![1, 2]);
        // Step-0 flipped half "1…": E is excluded as the subject, so the
        // strongest audience member there is D (level 1).
        assert_eq!(ids[0], nid("1101")); // D
        assert_eq!(ids[1], nid("0111")); // B
    }

    #[test]
    fn larger_random_membership_reaches_every_audience_member_once() {
        // Build a synthetic 200-node membership with random ids and levels
        // drawn so that eigenstring constraints hold, then check coverage
        // for several changing nodes.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut list = PeerList::new(Prefix::EMPTY);
        let mut ids = Vec::new();
        for _ in 0..200 {
            let id = NodeId(rng.gen::<u128>());
            let level = Level::new(rng.gen_range(0..4));
            list.insert(Pointer::new(id, Addr(0), level));
            ids.push((id, level));
        }
        // Ensure at least one top node exists and use it as root.
        let root = ids
            .iter()
            .find(|(_, l)| l.is_top())
            .map(|(id, _)| *id)
            .unwrap_or_else(|| {
                let id = NodeId(rng.gen::<u128>());
                list.insert(Pointer::new(id, Addr(0), Level::TOP));
                ids.push((id, Level::TOP));
                id
            });
        for &(changing, _) in ids.iter().take(10) {
            let edges = plan_tree(&list, root, 0, changing);
            let reached: BTreeSet<NodeId> = edges.iter().map(|e| e.to.id).collect();
            let expect: BTreeSet<NodeId> = ids
                .iter()
                .filter(|(id, l)| {
                    NodeIdentity::new(*id, *l).covers(changing) && *id != root && *id != changing
                })
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(reached, expect, "audience mismatch for {changing}");
            assert_eq!(reached.len(), edges.len(), "duplicate delivery");
        }
    }

    #[test]
    fn depth_and_root_degree_are_logarithmic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut list = PeerList::new(Prefix::EMPTY);
        let n = 1024;
        let mut root = None;
        for i in 0..n {
            let id = NodeId(rng.gen::<u128>());
            // All top nodes: audience = everyone; worst-case tree size.
            list.insert(Pointer::new(id, Addr(0), Level::TOP));
            if i == 0 {
                root = Some(id);
            }
        }
        let root = root.unwrap();
        let changing = NodeId(rng.gen::<u128>());
        let edges = plan_tree(&list, root, 0, changing);
        let stats = tree_stats(&edges, root);
        assert_eq!(stats.receivers, n - 1); // everyone but the root
                                            // log2(1024) = 10; allow slack for the uneven random split.
        assert!(stats.max_depth <= 24, "depth {} too large", stats.max_depth);
        assert!(
            stats.root_out_degree >= 8 && stats.root_out_degree <= 40,
            "root degree {} not ≈ log2 N",
            stats.root_out_degree
        );
    }

    #[test]
    fn redirect_skips_dead_targets() {
        let list = figure1_list();
        let changing = nid("1011");
        let range = Prefix::from_bits_str("1").unwrap();
        let t = redirect_target(&list, range, changing, nid("0010"), &[]).unwrap();
        assert_eq!(t.id, nid("1101"));
        // Pretend D already failed but the list still contains it.
        assert!(redirect_target(&list, range, changing, nid("0010"), &[nid("1101")]).is_none());
        // Once the dead pointer is actually removed, the next candidate
        // (H, level 2) is returned.
        let mut pruned = list.clone();
        pruned.remove(nid("1101"));
        let t = redirect_target(&pruned, range, changing, nid("0010"), &[nid("1101")]).unwrap();
        assert_eq!(t.id, nid("1010"));
    }
}
