//! Typed protocol errors.
//!
//! The sans-IO machine never panics on malformed or surprising input: a
//! condition the protocol cannot recover from becomes a [`ProtocolError`],
//! surfaced to the embedder through [`crate::node::Output::Fatal`]. This
//! keeps every event-handling path total — a requirement enforced
//! mechanically by `peerwindow-audit`'s `panic-site` lint rule.

use core::fmt;

/// An unrecoverable protocol-level failure inside the state machine.
///
/// Each variant maps to a stable static description (usable as the
/// `Output::Fatal` payload) so embedders can match on the reason without
/// string parsing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The bootstrap node answered with an empty top-node list — it cannot
    /// be a functioning member (a seed would have named itself).
    BootstrapReturnedNoTops,
    /// A joining step needed a top node but none is known and none can be
    /// discovered (every candidate timed out).
    NoReachableTop,
    /// A level-query reply arrived while no top node is known to download
    /// from — the join cannot proceed.
    LevelReplyWithoutKnownTop,
}

impl ProtocolError {
    /// Stable static description, suitable for `Output::Fatal`.
    pub const fn as_str(self) -> &'static str {
        match self {
            ProtocolError::BootstrapReturnedNoTops => "bootstrap returned no top nodes",
            ProtocolError::NoReachableTop => "joining failed: no reachable top node",
            ProtocolError::LevelReplyWithoutKnownTop => {
                "level reply arrived with no known top node"
            }
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_static_str() {
        for e in [
            ProtocolError::BootstrapReturnedNoTops,
            ProtocolError::NoReachableTop,
            ProtocolError::LevelReplyWithoutKnownTop,
        ] {
            assert_eq!(e.to_string(), e.as_str());
        }
    }
}
