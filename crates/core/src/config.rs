//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// Tunable protocol parameters, with the defaults used in the paper's §5
/// experiments where the paper states them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Size of the top-node list ("commonly we set t = 8", §2).
    pub top_list_size: usize,
    /// Event message size in bits (§5.1: 1,000 bits).
    pub event_msg_bits: u64,
    /// Heartbeat probe size in bits (§1 uses 500-bit heartbeats).
    pub probe_msg_bits: u64,
    /// Acknowledgement size in bits (small control message).
    pub ack_msg_bits: u64,
    /// Interval between probes of the ring successor (§4.1), µs.
    pub probe_interval_us: u64,
    /// Timeout before a probe or multicast send is retried, µs.
    pub rpc_timeout_us: u64,
    /// Attempts before a silent pointer is declared dead ("three
    /// continuous attempts", §4.2).
    pub max_attempts: u32,
    /// Exponential backoff multiplier on the RPC retry timeout: attempt
    /// `k` (1-based) waits `rpc_timeout_us · mult^(k-1)` before the next
    /// re-send. 1.0 restores the paper's fixed-interval retry; > 1
    /// spaces retries out so a congested or bursty-lossy path is not
    /// hammered at exactly the cadence that is failing.
    pub rpc_backoff_mult: f64,
    /// Upper bound on one backed-off retry wait, µs (keeps give-up
    /// latency bounded however large `max_attempts` is configured).
    pub rpc_backoff_max_us: u64,
    /// Deterministic jitter fraction on each backed-off wait: the wait
    /// is stretched by up to this fraction, drawn from the machine's
    /// seeded RNG. Decorrelates retry storms after a partition heals
    /// (every node otherwise retries in lockstep).
    pub rpc_backoff_jitter: f64,
    /// Per-hop processing delay during multicast (§5.1: "every medium node
    /// delays the message for 1 second"), µs.
    pub processing_delay_us: u64,
    /// User-set upper bandwidth threshold for node collection, bps. §5.1
    /// sets it to 1 % of the node's total bandwidth, floored at 500 bps;
    /// that policy lives in the workload crate — this is the resulting
    /// per-node value.
    pub bandwidth_threshold_bps: f64,
    /// Sliding window over which input bandwidth is measured for level
    /// adaptation, µs.
    pub bandwidth_window_us: u64,
    /// Hysteresis: shift one level lower (smaller list) when measured cost
    /// exceeds `threshold`, one level higher (larger list) when it falls
    /// below `threshold * grow_fraction`. The paper's §2 example uses 1/2,
    /// but consecutive levels differ by exactly 2× in cost, so a [W/2, W]
    /// band leaves boundary nodes with no stable level (they oscillate
    /// every window, and each shift is itself a multicast event — a
    /// positive feedback loop at scale). 0.4 widens the band ratio to
    /// 2.5 and kills the limit cycle; see DESIGN.md.
    pub grow_fraction: f64,
    /// Refresh multiplier: an l-level node re-multicasts its state every
    /// `refresh_multiplier · LT_l` (§4.6 uses 2).
    pub refresh_multiplier: f64,
    /// Expiry multiplier: an m-level pointer unrefreshed for
    /// `expire_multiplier · LT_m` is dropped (§4.6 uses 3).
    pub expire_multiplier: f64,
    /// Fallback §4.6 self-refresh period before any lifetime has been
    /// observed (a quiet system never calibrates `LT_l`; this bounds how
    /// long join-window absences can survive on lossy networks), µs.
    pub default_refresh_us: u64,
    /// Optional periodic pull reconciliation: every interval the node
    /// re-downloads its scope from a top node and merges unknown entries.
    /// 0 disables it (the paper's push-only design, appropriate for
    /// reliable transport); lossy deployments should enable it — push-only
    /// dissemination degrades compoundingly once datagram loss removes
    /// enough entries that multicast trees route around their holders.
    pub reconcile_interval_us: u64,
    /// Whether a joining node uses the §4.3 warm-up (start low, rise after
    /// background download).
    pub warm_up: bool,
    /// Scope of failure-detection probing; the paper probes within the
    /// eigenstring group.
    pub probe_scope: ProbeScope,
}

/// Which ring a node probes for failure detection (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeScope {
    /// Probe the successor within the node's eigenstring group (paper).
    Group,
    /// Probe the successor in the whole peer list (extension/ablation:
    /// covers singleton groups at the same per-node cost).
    PeerList,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            top_list_size: 8,
            event_msg_bits: 1_000,
            probe_msg_bits: 500,
            ack_msg_bits: 100,
            probe_interval_us: 10_000_000, // 10 s
            rpc_timeout_us: 3_000_000,     // 3 s
            max_attempts: 3,
            rpc_backoff_mult: 2.0,
            rpc_backoff_max_us: 30_000_000, // 30 s cap
            rpc_backoff_jitter: 0.1,
            processing_delay_us: 1_000_000, // 1 s (§5.1)
            bandwidth_threshold_bps: 5_000.0,
            bandwidth_window_us: 60_000_000, // 60 s
            grow_fraction: 0.4,
            refresh_multiplier: 2.0,
            expire_multiplier: 3.0,
            default_refresh_us: 600_000_000, // 10 min
            reconcile_interval_us: 0,
            warm_up: false,
            probe_scope: ProbeScope::Group,
        }
    }
}

impl ProtocolConfig {
    /// The §5.1 threshold policy: 1 % of the node's total bandwidth but
    /// never below 500 bps.
    pub fn paper_threshold(total_bandwidth_bps: f64) -> f64 {
        (0.01 * total_bandwidth_bps).max(500.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = ProtocolConfig::default();
        assert_eq!(c.top_list_size, 8);
        assert_eq!(c.event_msg_bits, 1_000);
        assert_eq!(c.max_attempts, 3);
        assert_eq!(c.processing_delay_us, 1_000_000);
        // Backoff is an extension (the paper retries at a fixed
        // interval): doubling with a 10% jitter and a 30 s cap.
        assert_eq!(c.rpc_backoff_mult, 2.0);
        assert_eq!(c.rpc_backoff_max_us, 30_000_000);
        assert_eq!(c.rpc_backoff_jitter, 0.1);
        assert_eq!(c.refresh_multiplier, 2.0);
        assert_eq!(c.expire_multiplier, 3.0);
    }

    #[test]
    fn paper_threshold_floors_at_500bps() {
        assert_eq!(ProtocolConfig::paper_threshold(56_000.0), 560.0);
        assert_eq!(ProtocolConfig::paper_threshold(10_000.0), 500.0);
        assert_eq!(ProtocolConfig::paper_threshold(10_000_000.0), 100_000.0);
    }
}
