//! State-changing events.
//!
//! "A state-changing event, e.g., a node's joining, leaving or information
//! changing, will be multicast to all the nodes who are interested in the
//! changing node" (§2). Level shifts (§4.3) and the periodic §4.6 refresh
//! also travel as events.

use crate::id::NodeId;
use crate::level::{Level, NodeIdentity};
use crate::pointer::{Addr, Pointer};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// What happened to the subject node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// The subject joined the system (§4.3).
    Join,
    /// The subject left (gracefully announced or detected by probing, §4.1).
    Leave,
    /// The subject shifted its level; `from` is the previous level.
    LevelShift {
        /// Level before the shift.
        from: Level,
    },
    /// The subject changed its attached info (§3).
    InfoChange,
    /// Periodic anti-entropy refresh of the subject's state (§4.6).
    Refresh,
}

impl EventKind {
    /// Whether receiving this event removes the subject from peer lists.
    #[inline]
    pub fn is_removal(self) -> bool {
        matches!(self, EventKind::Leave)
    }
}

/// A state-changing event about one node.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StateEvent {
    /// The changing node.
    pub subject: NodeId,
    /// Its transport address.
    pub addr: Addr,
    /// Its level *after* the change.
    pub level: Level,
    /// What changed.
    pub kind: EventKind,
    /// Per-subject sequence number; (subject, seq) deduplicates redundant
    /// deliveries and orders conflicting updates.
    pub seq: u64,
    /// Simulation/protocol time (µs) at which the change occurred. Peer
    /// list entries are in error from this instant until delivery.
    pub origin_us: u64,
    /// Attached info carried by the event (empty for joins/leaves unless
    /// the application set one).
    pub info: Bytes,
}

impl StateEvent {
    /// The subject's identity after the event.
    #[inline]
    pub fn identity(&self) -> NodeIdentity {
        NodeIdentity::new(self.subject, self.level)
    }

    /// The pointer a receiver should install/update for the subject.
    pub fn to_pointer(&self, now_us: u64) -> Pointer {
        Pointer {
            id: self.subject,
            addr: self.addr,
            level: self.level,
            info: self.info.clone(),
            last_refresh_us: now_us,
            first_seen_us: self.origin_us,
        }
    }

    /// Deduplication key.
    #[inline]
    pub fn key(&self) -> (NodeId, u64) {
        (self.subject, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_flag() {
        assert!(EventKind::Leave.is_removal());
        assert!(!EventKind::Join.is_removal());
        assert!(!EventKind::Refresh.is_removal());
        assert!(!EventKind::LevelShift { from: Level::TOP }.is_removal());
    }

    #[test]
    fn to_pointer_carries_event_fields() {
        let ev = StateEvent {
            subject: NodeId(9),
            addr: Addr(3),
            level: Level::new(2),
            kind: EventKind::Join,
            seq: 1,
            origin_us: 5,
            info: Bytes::from_static(b"os:linux"),
        };
        let p = ev.to_pointer(77);
        assert_eq!(p.id, NodeId(9));
        assert_eq!(p.level, Level::new(2));
        assert_eq!(p.last_refresh_us, 77);
        assert_eq!(&p.info[..], b"os:linux");
        assert_eq!(ev.key(), (NodeId(9), 1));
    }
}
