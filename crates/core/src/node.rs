//! The PeerWindow node — a sans-IO protocol state machine.
//!
//! [`NodeMachine`] implements the complete protocol of §4: the four-step
//! joining process, ring-probing failure detection, tree multicast with
//! acknowledgements / retries / redirection, lazy top-node-list
//! maintenance, autonomic level adaptation, and the §4.6 refresh/expiry
//! mechanism. It performs no I/O and reads no clock: the embedder (a real
//! UDP transport, or the discrete-event simulator in `peerwindow-sim`)
//! feeds it `(now, Input)` pairs and executes the returned [`Output`]s.
//! This makes every protocol decision deterministic and unit-testable.

use crate::config::{ProbeScope, ProtocolConfig};
use crate::error::ProtocolError;
use crate::event::{EventKind, StateEvent};
use crate::id::{NodeId, Prefix, ID_BITS};
use crate::level::Level;
use crate::messages::Message;
use crate::model::ModelParams;
use crate::multicast::{forward_steps, Target};
use crate::peer_list::PeerList;
use crate::pointer::{Addr, Pointer};
use crate::top_list::TopList;
use bytes::Bytes;
// Protocol state lives in ordered collections only: iteration order must
// be a pure function of the contents, never of a hasher seed, or two
// identically-seeded simulations diverge (see DESIGN.md, "Determinism &
// invariant contract").
use std::collections::{BTreeMap, BTreeSet};

#[cfg(feature = "trace")]
use peerwindow_trace::{CauseId, EventClass, JoinPhase, NodeTrace, TraceEventKind};

/// Sequence number used for leave events (reported by detectors who do not
/// know the subject's own counter; terminal, so "largest wins" is safe).
pub const LEAVE_SEQ: u64 = u64::MAX;

/// External stimulus for the machine.
#[derive(Clone, Debug)]
pub enum Input {
    /// A message arrived from the network.
    Message {
        /// Sender id.
        from: NodeId,
        /// Sender address (for replies to nodes not in the peer list).
        from_addr: Addr,
        /// The message.
        msg: Message,
    },
    /// A timer set via [`Output::SetTimer`] fired.
    Timer(Timer),
    /// An application command.
    Command(Command),
}

/// Application-level commands.
#[derive(Clone, Debug)]
pub enum Command {
    /// Change the attached info (§3) and announce it.
    ChangeInfo(Bytes),
    /// Change the bandwidth threshold (autonomy: the user retunes the
    /// budget at runtime).
    SetThreshold(f64),
    /// Pin the node to an explicit level (§4.3 runtime shifting, driven
    /// directly rather than through the bandwidth controller). Lowering
    /// drops out-of-scope pointers immediately; raising downloads the
    /// wider list from a top node first.
    SetLevel(Level),
    /// Leave gracefully: announce departure before stopping.
    Shutdown,
}

/// Timers the machine asks its embedder to schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Timer {
    /// Periodic ring probe (§4.1).
    Probe,
    /// Timeout of the pending RPC with this token.
    RpcTimeout(u64),
    /// Periodic bandwidth measurement / level adaptation.
    Adapt,
    /// §4.6 self-refresh multicast.
    Refresh,
    /// §4.6 stale-pointer expiry sweep.
    Expire,
    /// One-shot post-join reconciliation: re-download our scope once the
    /// join multicast has settled, closing the blind window between the
    /// §4.3 step-3 snapshot and our appearance in other nodes' lists.
    /// (Implementation addition in the spirit of the §4.3 warm-up's
    /// background download; without it, events originating during the
    /// joining round-trips would leave permanent absent pointers until
    /// the §4.6 refresh.)
    Reconcile,
}

/// Effects the embedder must execute.
#[derive(Clone, Debug)]
pub enum Output {
    /// Transmit `msg` to `to` after `delay_us` of local processing
    /// (§5.1 charges 1 s per multicast hop for receive/compute/send).
    Send {
        /// Destination.
        to: Target,
        /// Payload.
        msg: Message,
        /// Local processing delay before the message leaves the node.
        delay_us: u64,
    },
    /// Schedule `timer` to fire after `delay_us`.
    SetTimer {
        /// Delay from now.
        delay_us: u64,
        /// Which timer.
        timer: Timer,
    },
    /// The joining process completed; the node is active.
    Joined,
    /// The node detected the silent failure of `dead` (informational).
    FailureDetected {
        /// The departed neighbor.
        dead: NodeId,
    },
    /// The node shifted level (informational).
    LevelShifted {
        /// Previous level.
        from: Level,
        /// New level.
        to: Level,
    },
    /// The machine cannot make progress (e.g. its bootstrap node died
    /// before answering). The embedder should discard the node.
    Fatal(&'static str),
}

/// Lifecycle of the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// §4.3 step 1: locating a top node of our part.
    FindingTop,
    /// §4.3 step 2: estimating our level.
    EstimatingLevel,
    /// §4.3 step 3: downloading the peer list and top-node list.
    Downloading,
    /// Steady state.
    Active,
    /// Announced a graceful departure and now draining the announcement:
    /// only the Leave multicast's RPC plumbing (acks, retries,
    /// redirects) is still processed, until nothing is pending.
    Leaving,
    /// Departed (gracefully or by command); ignores further input.
    Left,
}

/// Why an RPC was issued — determines the give-up behaviour.
#[derive(Clone, Debug)]
enum RpcKind {
    /// Ring probe; give-up = failure detection (§4.1).
    Probe,
    /// Multicast forward; give-up = drop pointer and redirect (§4.2).
    McastForward {
        event: StateEvent,
        /// The flipped range the target was chosen from.
        range: Prefix,
    },
    /// Event report to a top node; give-up = redirect to another top
    /// (§4.5).
    Report { event: StateEvent },
    /// §4.3 step 1.
    JoinFindTop,
    /// §4.3 step 2.
    JoinLevelQuery,
    /// §4.3 step 3.
    JoinDownload,
    /// Level raise download; give-up = abort the raise.
    RaiseDownload { new_level: Level },
    /// Post-join reconciliation download (see `Timer::Reconcile`);
    /// give-up = skip (the §4.6 refresh eventually heals the list).
    Reconcile,
    /// Fallback top-list fetch (§4.5); `resume` is re-reported on success.
    TopListFetch { resume: Option<StateEvent> },
}

/// A pending request awaiting its reply.
#[derive(Clone, Debug)]
struct PendingRpc {
    target: Target,
    msg: Message,
    attempts: u32,
    kind: RpcKind,
}

/// Aggregate traffic and protocol counters, readable by the embedder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Bits received (all messages).
    pub rx_bits: u64,
    /// Bits sent (all messages).
    pub tx_bits: u64,
    /// Messages received.
    pub rx_msgs: u64,
    /// Messages sent.
    pub tx_msgs: u64,
    /// Fresh events applied to the peer list.
    pub events_applied: u64,
    /// Duplicate events discarded.
    pub events_duped: u64,
    /// Multicast forwards initiated.
    pub forwards: u64,
    /// Ring probes sent (§4.1).
    pub probes_sent: u64,
    /// Silent failures detected by probing.
    pub failures_detected: u64,
    /// Pointers dropped after unanswered multicast sends.
    pub stale_dropped: u64,
    /// Pointers dropped by §4.6 expiry.
    pub expired: u64,
    /// RPC re-sends after an unanswered attempt (not counting give-ups).
    pub rpc_retries: u64,
}

/// Per-level observed lifetime accumulators (for `LT_l`, §4.6).
#[derive(Clone, Debug, Default)]
struct LifetimeStats {
    count: Vec<u64>,
    sum_us: Vec<u64>,
}

impl LifetimeStats {
    fn record(&mut self, level: Level, lifetime_us: u64) {
        let l = level.value() as usize;
        if self.count.len() <= l {
            self.count.resize(l + 1, 0);
            self.sum_us.resize(l + 1, 0);
        }
        self.count[l] += 1;
        self.sum_us[l] += lifetime_us;
    }

    /// Mean observed lifetime at `level`; falls back to the overall mean
    /// across levels when this level has no samples yet (a fresh node has
    /// observed few departures, but any timescale beats none for the
    /// §4.6 machinery).
    fn mean_us(&self, level: Level) -> Option<u64> {
        let l = level.value() as usize;
        match self.count.get(l) {
            Some(&c) if c > 0 => Some(self.sum_us[l] / c),
            _ => self.overall_mean_us(),
        }
    }

    /// Mean observed lifetime over all levels.
    fn overall_mean_us(&self) -> Option<u64> {
        let c: u64 = self.count.iter().sum();
        self.sum_us.iter().sum::<u64>().checked_div(c)
    }
}

/// Sliding-window receive-bandwidth meter (six rotating buckets).
#[derive(Clone, Debug)]
struct BandwidthMeter {
    bucket_us: u64,
    buckets: [u64; 6],
    current: usize,
    current_start_us: u64,
}

impl BandwidthMeter {
    fn new(window_us: u64) -> Self {
        BandwidthMeter {
            bucket_us: (window_us / 6).max(1),
            buckets: [0; 6],
            current: 0,
            current_start_us: 0,
        }
    }

    fn rotate_to(&mut self, now_us: u64) {
        while now_us >= self.current_start_us + self.bucket_us {
            self.current = (self.current + 1) % 6;
            self.buckets[self.current] = 0;
            self.current_start_us += self.bucket_us;
        }
    }

    fn note(&mut self, now_us: u64, bits: u64) {
        self.rotate_to(now_us);
        self.buckets[self.current] += bits;
    }

    /// Average bps over the window ending at `now_us`.
    fn bps(&mut self, now_us: u64) -> f64 {
        self.rotate_to(now_us);
        let total: u64 = self.buckets.iter().sum();
        total as f64 / (6.0 * self.bucket_us as f64 / 1e6)
    }
}

/// The PeerWindow protocol state machine for one node.
#[derive(Clone, Debug)]
pub struct NodeMachine {
    cfg: ProtocolConfig,
    me: NodeId,
    addr: Addr,
    info: Bytes,
    level: Level,
    peers: PeerList,
    tops: TopList,
    threshold_bps: f64,
    phase: Phase,
    seq: u64,
    /// Per-subject dedup horizon: highest `(seq, origin_us)` applied,
    /// plus whether the freshest admitted event was a removal. An event
    /// is fresh when its seq OR its origin time exceeds the horizon; the
    /// origin clause lets a live node's later refresh override a false
    /// leave (whose seq is `LEAVE_SEQ` = max). The removal flag guards
    /// top-list admission: a stale piggybacked top list must not re-seed
    /// a node we know departed, because the leave event that purged it
    /// is already inside the horizon and can never fire again.
    seen: BTreeMap<NodeId, (u64, u64, bool)>,
    pending: BTreeMap<u64, PendingRpc>,
    next_token: u64,
    meter: BandwidthMeter,
    lifetimes: LifetimeStats,
    stats: NodeStats,
    rng: u64,
    /// Tops already tried (and failed) for the current report.
    report_dead: Vec<NodeId>,
    /// When we last announced our own state (join, refresh, shift). The
    /// §4.6 refresh fires when `now − last` exceeds `2 · LT_level`.
    last_self_refresh_us: u64,
    /// When we last shifted level. Adaptation pauses for one full
    /// measurement window afterwards: the sliding window still contains
    /// traffic from the old level, and acting on it overshoots.
    last_shift_us: u64,
    /// Event keys whose reports we already forwarded (cycle guard).
    forwarded_reports: BTreeSet<(NodeId, u64)>,
    /// Adaptation debounce (see `adapt_level`): consecutive over-budget
    /// (+) or raise-eligible (−) windows.
    adapt_pressure: i8,
    /// The error that terminated the machine, if any (see [`ProtocolError`]).
    fatal_error: Option<ProtocolError>,
    /// Model-checker mutation switch: when set, the DESIGN.md gap-13 fix
    /// (obituary courtesy copy + immediate self-refutation) is disabled,
    /// restoring the refutation-invisible false-obituary bug so the
    /// checker's regression tests can prove the bug is still caught.
    #[cfg(any(test, feature = "invariants"))]
    gap13_bug_reintroduced: bool,
    /// Structured event sink; the embedder drains it via
    /// [`NodeMachine::take_trace`] after every handled input.
    #[cfg(feature = "trace")]
    trace: NodeTrace,
}

impl NodeMachine {
    /// Creates a *seed* node: already active, alone, at level 0 — the
    /// genesis of a new system. Returns the machine and its start-up
    /// outputs (the periodic timers).
    pub fn new_seed(
        cfg: ProtocolConfig,
        me: NodeId,
        addr: Addr,
        info: Bytes,
        threshold_bps: f64,
        seed: u64,
    ) -> (Self, Vec<Output>) {
        let mut n = Self::bare(cfg, me, addr, info, threshold_bps, seed);
        n.phase = Phase::Active;
        n.level = Level::TOP;
        n.peers = PeerList::new(Prefix::EMPTY);
        let mut outs = n.startup_timers();
        // Joiners arm the reconcile chain post-join; a seed must arm it
        // here or it never participates in §4.5 anti-entropy — and a
        // seed erased from every list by an asymmetric link failure can
        // only re-announce itself through this chain.
        if n.cfg.reconcile_interval_us > 0 {
            outs.push(Output::SetTimer {
                delay_us: n.cfg.reconcile_interval_us,
                timer: Timer::Reconcile,
            });
        }
        (n, outs)
    }

    /// Creates a joining node and emits §4.3 step 1 (contact the
    /// bootstrap node).
    pub fn new_joining(
        cfg: ProtocolConfig,
        me: NodeId,
        addr: Addr,
        info: Bytes,
        threshold_bps: f64,
        bootstrap: Target,
        seed: u64,
    ) -> (Self, Vec<Output>) {
        let mut n = Self::bare(cfg, me, addr, info, threshold_bps, seed);
        n.phase = Phase::FindingTop;
        let mut outs = Vec::new();
        let msg = Message::FindTop { joiner: me };
        n.send_rpc(&mut outs, bootstrap, msg, RpcKind::JoinFindTop, 0);
        (n, outs)
    }

    fn bare(
        cfg: ProtocolConfig,
        me: NodeId,
        addr: Addr,
        info: Bytes,
        threshold_bps: f64,
        seed: u64,
    ) -> Self {
        let window = cfg.bandwidth_window_us;
        let t = cfg.top_list_size;
        NodeMachine {
            cfg,
            me,
            addr,
            info,
            level: Level::MAX,
            peers: PeerList::new(Prefix::EMPTY),
            tops: TopList::new(t),
            threshold_bps,
            phase: Phase::FindingTop,
            seq: 0,
            seen: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_token: 1,
            meter: BandwidthMeter::new(window),
            lifetimes: LifetimeStats::default(),
            stats: NodeStats::default(),
            rng: seed | 1,
            report_dead: Vec::new(),
            last_self_refresh_us: 0,
            last_shift_us: 0,
            forwarded_reports: BTreeSet::new(),
            adapt_pressure: 0,
            fatal_error: None,
            #[cfg(any(test, feature = "invariants"))]
            gap13_bug_reintroduced: false,
            #[cfg(feature = "trace")]
            trace: NodeTrace::new(me.0),
        }
    }

    /// Deliberately reintroduces the DESIGN.md gap-13 bug (the
    /// refutation-invisible false obituary): the failure detector stops
    /// sending the condemned node its courtesy obituary copy, and a node
    /// that somehow hears its own removal forwards it instead of
    /// refuting. Only exists for the model checker's regression tests —
    /// `peerwindow-mc` must keep catching this bug with a shrunk trace.
    #[cfg(any(test, feature = "invariants"))]
    pub fn reintroduce_gap13_false_obituary_bug(&mut self) {
        self.gap13_bug_reintroduced = true;
    }

    /// Whether the gap-13 mutation switch is set (always false in
    /// production builds, where the switch is compiled out).
    #[inline]
    fn gap13_suppressed(&self) -> bool {
        #[cfg(any(test, feature = "invariants"))]
        {
            self.gap13_bug_reintroduced
        }
        #[cfg(not(any(test, feature = "invariants")))]
        {
            false
        }
    }

    /// Turns structured tracing on or off. Machines start with tracing
    /// off so embedders that never drain don't grow the buffer.
    #[cfg(feature = "trace")]
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Drains buffered trace records into `out`.
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self, out: &mut Vec<peerwindow_trace::TraceRecord>) {
        self.trace.drain_into(out);
    }

    /// Emits one trace record at the machine's current level.
    #[cfg(feature = "trace")]
    #[inline]
    fn tr(&mut self, cause: CauseId, kind: TraceEventKind) {
        if self.trace.is_enabled() {
            self.trace.emit(self.level.0, kind, cause);
        }
    }

    /// The causality id carried by an event-bearing message, if any.
    #[cfg(feature = "trace")]
    fn trace_cause(msg: &Message) -> CauseId {
        match msg {
            Message::Report { event } | Message::Multicast { event, .. } => {
                CauseId::new(event.subject.0, event.seq)
            }
            Message::ReportAck { key, .. } | Message::MulticastAck { key } => {
                CauseId::new(key.0 .0, key.1)
            }
            _ => CauseId::NONE,
        }
    }

    /// The trace class of a state-event kind.
    #[cfg(feature = "trace")]
    fn trace_event_class(kind: &EventKind) -> EventClass {
        match kind {
            EventKind::Join => EventClass::Join,
            EventKind::Leave => EventClass::Leave,
            EventKind::LevelShift { .. } => EventClass::LevelShift,
            EventKind::InfoChange => EventClass::InfoChange,
            EventKind::Refresh => EventClass::Refresh,
        }
    }

    /// Terminates the machine with a typed error: records it, emits
    /// [`Output::Fatal`], and stops accepting input.
    fn fail(&mut self, outs: &mut Vec<Output>, err: ProtocolError) {
        self.fatal_error = Some(err);
        outs.push(Output::Fatal(err.as_str()));
        self.phase = Phase::Left;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Current level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Current eigenstring.
    pub fn eigenstring(&self) -> Prefix {
        self.level.eigenstring(self.me)
    }

    /// The peer list (read-only).
    pub fn peers(&self) -> &PeerList {
        &self.peers
    }

    /// The top-node list (read-only).
    pub fn tops(&self) -> &TopList {
        &self.tops
    }

    /// Whether the node has completed joining and not left.
    pub fn is_active(&self) -> bool {
        self.phase == Phase::Active
    }

    /// Whether the node has left the system (gracefully, after draining
    /// its departure announcement, or terminally on a fatal error). A
    /// left machine ignores all further input; harnesses may reap it.
    pub fn has_left(&self) -> bool {
        self.phase == Phase::Left
    }

    /// The typed error that terminated the machine, if it died on one.
    pub fn fatal_error(&self) -> Option<ProtocolError> {
        self.fatal_error
    }

    /// Whether the node believes it is a top node of its part: no
    /// *covering* entry of its top list (one whose eigenstring prefixes
    /// our id) is stronger than us. Non-covering entries belong to other
    /// parts and say nothing about our own part's hierarchy.
    pub fn believes_top(&self) -> bool {
        self.tops
            .entries()
            .iter()
            .filter(|t| t.id != self.me && t.id.prefix(t.level.value()).contains(self.me))
            .all(|t| self.level.at_least_as_strong_as(t.level))
    }

    /// Traffic counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Attached application info.
    pub fn info(&self) -> &Bytes {
        &self.info
    }

    /// Current bandwidth threshold (bps).
    pub fn threshold_bps(&self) -> f64 {
        self.threshold_bps
    }

    /// Number of outstanding RPCs (diagnostics / quiescence detection).
    pub fn pending_rpc_count(&self) -> usize {
        self.pending.len()
    }

    /// The target of the outstanding ring probe, if any (diagnostics).
    pub fn pending_probe_target(&self) -> Option<NodeId> {
        self.pending
            .values()
            .find(|p| matches!(p.kind, RpcKind::Probe))
            .map(|p| p.target.id)
    }

    /// This node as a multicast [`Target`].
    pub fn as_target(&self) -> Target {
        Target {
            id: self.me,
            addr: self.addr,
            level: self.level,
        }
    }

    // ------------------------------------------------------------------
    // Main entry point
    // ------------------------------------------------------------------

    /// Feeds one input at protocol time `now_us`, returning the effects.
    pub fn handle(&mut self, now_us: u64, input: Input) -> Vec<Output> {
        if self.phase == Phase::Left {
            return Vec::new();
        }
        if self.phase == Phase::Leaving && !self.drains(&input) {
            return Vec::new();
        }
        #[cfg(feature = "trace")]
        self.trace.set_now(now_us);
        let mut outs = Vec::new();
        match input {
            Input::Message {
                from,
                from_addr,
                msg,
            } => {
                self.stats.rx_msgs += 1;
                let bits = msg.wire_bits(&self.cfg);
                self.stats.rx_bits += bits;
                #[cfg(feature = "trace")]
                self.tr(
                    Self::trace_cause(&msg),
                    TraceEventKind::MsgRecv {
                        from: from.0,
                        class: msg.trace_class(),
                        bits,
                    },
                );
                // The adaptation meter tracks the *steady* maintenance
                // flow the level controls (§2's W). One-off bulk
                // transfers (peer-list downloads) would spike the window
                // and make every raise immediately un-raise itself; and
                // the §4.1 probe heartbeat (one probe per interval, plus
                // whatever probes others aim at us) is level-independent
                // load a node cannot shed by descending, so counting it
                // pins a small-budget node at the bottom forever once
                // probe traffic alone exceeds its grow threshold.
                if !matches!(
                    msg,
                    Message::DownloadReply { .. } | Message::Probe | Message::ProbeAck
                ) {
                    self.meter.note(now_us, bits);
                }
                self.on_message(now_us, from, from_addr, msg, &mut outs);
            }
            Input::Timer(t) => self.on_timer(now_us, t, &mut outs),
            Input::Command(c) => self.on_command(now_us, c, &mut outs),
        }
        if self.phase == Phase::Leaving && self.pending.is_empty() {
            self.phase = Phase::Left;
        }
        outs
    }

    /// Inputs a gracefully-leaving node still processes: the RPC plumbing
    /// that carries its own departure announcement to completion —
    /// replies that resolve pending calls, and the timeouts that retry or
    /// redirect them. Everything else (new probes, commands, serving
    /// queries) is refused; the node has already announced it is gone.
    fn drains(&self, input: &Input) -> bool {
        match input {
            Input::Timer(t) => matches!(t, Timer::RpcTimeout(_)),
            Input::Message { msg, .. } => matches!(
                msg,
                Message::MulticastAck { .. }
                    | Message::ReportAck { .. }
                    | Message::ProbeAck
                    | Message::TopListReply { .. }
            ),
            Input::Command(_) => false,
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn on_message(
        &mut self,
        now_us: u64,
        from: NodeId,
        from_addr: Addr,
        msg: Message,
        outs: &mut Vec<Output>,
    ) {
        let reply_to = Target {
            id: from,
            addr: from_addr,
            level: Level::MAX, // unknown; replies do not need it
        };
        match msg {
            Message::Probe => self.send(outs, reply_to, Message::ProbeAck, 0),
            Message::ProbeAck => {
                self.resolve_rpc(|p| matches!(p.kind, RpcKind::Probe) && p.target.id == from);
            }
            Message::Report { event } => {
                // §4.4: the multicast must be rooted at a top node of the
                // *subject's* part. Acknowledge only if we can root it or
                // forward it toward someone who can — a silent drop makes
                // the reporter time out, purge us from its top list, and
                // converge onto its real part top (stale cross-part
                // entries are unverifiable any other way).
                let key = event.key();
                let covers = self.eigenstring().contains(event.subject);
                if event.subject == self.me
                    && event.kind.is_removal()
                    && self.phase == Phase::Active
                {
                    // Someone reported our death to us. We are the living
                    // proof it is false: ack (so the reporter stops
                    // retrying) and refute instead of rooting it.
                    let tops = self.piggyback_tops();
                    self.send(outs, reply_to, Message::ReportAck { key, tops }, 0);
                    self.refute_false_obituary(now_us, &event, outs);
                } else if covers && self.believes_top() {
                    let tops = self.piggyback_tops();
                    self.send(outs, reply_to, Message::ReportAck { key, tops }, 0);
                    self.start_multicast(now_us, event, outs);
                } else {
                    let stronger_top = self
                        .tops
                        .entries()
                        .iter()
                        .filter(|t| {
                            t.level.value() < self.level.value()
                                && t.id != self.me
                                && t.id.prefix(t.level.value()).contains(event.subject)
                        })
                        .min_by_key(|t| (t.level.value(), t.id))
                        .copied();
                    // Cycle guard: forward each event key at most once
                    // (stale recorded levels could otherwise bounce a
                    // report between two nodes forever).
                    let first_time = self.forwarded_reports.insert(key);
                    match stronger_top {
                        Some(top) if first_time => {
                            let tops = self.piggyback_tops();
                            self.send(outs, reply_to, Message::ReportAck { key, tops }, 0);
                            let kind = RpcKind::Report {
                                event: event.clone(),
                            };
                            self.send_rpc(outs, top, Message::Report { event }, kind, 0);
                        }
                        _ if covers => {
                            let tops = self.piggyback_tops();
                            self.send(outs, reply_to, Message::ReportAck { key, tops }, 0);
                            self.start_multicast(now_us, event, outs);
                        }
                        _ => { /* silent: reporter retries elsewhere */ }
                    }
                }
            }
            Message::ReportAck { key, tops } => {
                self.refresh_tops(tops);
                self.report_dead.clear();
                self.resolve_rpc(
                    |p| matches!(&p.kind, RpcKind::Report { event } if event.key() == key),
                );
            }
            Message::Multicast { event, step } => {
                let key = event.key();
                self.send(outs, reply_to, Message::MulticastAck { key }, 0);
                if self.apply_event(now_us, &event) {
                    if self.refute_false_obituary(now_us, &event, outs) {
                        // Our own false obituary: refuted, not forwarded —
                        // the subtree assigned to us keeps us instead.
                    } else {
                        self.forward_event(now_us, &event, step, outs);
                    }
                }
            }
            Message::MulticastAck { key } => {
                self.resolve_rpc(|p| {
                    matches!(&p.kind, RpcKind::McastForward { event, .. } if event.key() == key)
                        && p.target.id == from
                });
            }
            Message::FindTop { joiner } => {
                // Return tops covering the joiner when we know any;
                // otherwise our whole top list (the joiner will hop on).
                let mut tops = self.piggyback_tops();
                tops.retain(|t| t.id != joiner);
                let covering: Vec<Target> = tops
                    .iter()
                    .copied()
                    .filter(|t| t.id.prefix(t.level.value()).contains(joiner))
                    .collect();
                let reply = if covering.is_empty() { tops } else { covering };
                self.send(outs, reply_to, Message::FindTopReply { tops: reply }, 0);
            }
            Message::FindTopReply { tops } => self.on_find_top_reply(now_us, tops, outs),
            Message::LevelQuery => {
                let cost = self.meter.bps(now_us);
                self.send(
                    outs,
                    reply_to,
                    Message::LevelQueryReply {
                        level: self.level,
                        cost_bps: cost,
                    },
                    0,
                );
            }
            Message::LevelQueryReply { level, cost_bps } => {
                self.on_level_query_reply(now_us, level, cost_bps, outs)
            }
            Message::Download { scope } => {
                let mut pointers = self.peers.subset_for(scope);
                // Our own list never stores a self-pointer; the downloader
                // still must learn about us when we fall in its scope.
                if scope.contains(self.me) {
                    let mut me =
                        Pointer::with_info(self.me, self.addr, self.level, self.info.clone());
                    me.last_refresh_us = now_us;
                    pointers.push(me);
                }
                let tops = self.piggyback_tops();
                self.send(
                    outs,
                    reply_to,
                    Message::DownloadReply {
                        scope,
                        pointers,
                        tops,
                    },
                    0,
                );
            }
            Message::DownloadReply {
                scope,
                pointers,
                tops,
            } => self.on_download_reply(now_us, scope, pointers, tops, outs),
            Message::TopListRequest => {
                let tops = self.piggyback_tops();
                self.send(outs, reply_to, Message::TopListReply { tops }, 0);
            }
            Message::TopListReply { tops } => {
                self.refresh_tops(tops);
                let resumed = self.take_rpc(|p| matches!(p.kind, RpcKind::TopListFetch { .. }));
                if let Some(p) = resumed {
                    if let RpcKind::TopListFetch {
                        resume: Some(event),
                    } = p.kind
                    {
                        self.report_event(now_us, event, outs);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Joining (§4.3)
    // ------------------------------------------------------------------

    fn on_find_top_reply(&mut self, _now_us: u64, tops: Vec<Target>, outs: &mut Vec<Output>) {
        if self.phase != Phase::FindingTop {
            // Late duplicate; top list refresh is still useful.
            self.refresh_tops(tops);
            return;
        }
        self.take_rpc(|p| matches!(p.kind, RpcKind::JoinFindTop));
        let covering: Vec<Target> = tops
            .iter()
            .copied()
            .filter(|t| t.id.prefix(t.level.value()).contains(self.me))
            .collect();
        if let Some(&top) = covering.first() {
            self.refresh_tops(covering.iter().copied());
            self.phase = Phase::EstimatingLevel;
            #[cfg(feature = "trace")]
            self.tr(
                CauseId::NONE,
                TraceEventKind::JoinStep {
                    phase: JoinPhase::LevelQuery,
                },
            );
            self.send_rpc(outs, top, Message::LevelQuery, RpcKind::JoinLevelQuery, 0);
        } else if let Some(&hop) = tops.first() {
            // Cross-part bootstrap (§4.4): ask a top of the bootstrap's
            // part; its top list holds tops of other parts, ours included.
            self.send_rpc(
                outs,
                hop,
                Message::FindTop { joiner: self.me },
                RpcKind::JoinFindTop,
                0,
            );
        } else {
            // The bootstrap knew no top at all: it must be a seed node
            // itself (it would have answered with covering tops
            // otherwise). Treat the sender as our top-of-part.
            self.fail(outs, ProtocolError::BootstrapReturnedNoTops);
        }
    }

    fn on_level_query_reply(
        &mut self,
        now_us: u64,
        l_t: Level,
        w_t_bps: f64,
        outs: &mut Vec<Output>,
    ) {
        if self.phase != Phase::EstimatingLevel {
            return;
        }
        let queried = self.take_rpc(|p| matches!(p.kind, RpcKind::JoinLevelQuery));
        let mut level = ModelParams::estimate_join_level(l_t, w_t_bps, self.threshold_bps);
        // A joiner can never be stronger than its part's tops.
        if level.value() < l_t.value() {
            level = l_t;
        }
        if self.cfg.warm_up {
            // §4.3 warm-up: start two levels weaker to come online fast;
            // the adaptation loop raises us once the background download
            // would have completed.
            level = Level::new(level.value().saturating_add(2));
        }
        self.level = level;
        self.phase = Phase::Downloading;
        #[cfg(feature = "trace")]
        self.tr(
            CauseId::NONE,
            TraceEventKind::JoinStep {
                phase: JoinPhase::Download,
            },
        );
        let scope = self.eigenstring();
        // A level reply normally implies a known top (the one we queried),
        // but a maliciously early or duplicated reply could arrive after
        // the top list was purged — fail the join rather than panic.
        let target = queried
            .map(|p| p.target)
            .or_else(|| self.tops.choose(&[], |n| self.rand_below(n)));
        let Some(target) = target else {
            self.fail(outs, ProtocolError::LevelReplyWithoutKnownTop);
            return;
        };
        self.send_rpc(
            outs,
            target,
            Message::Download { scope },
            RpcKind::JoinDownload,
            0,
        );
        let _ = now_us;
    }

    fn on_download_reply(
        &mut self,
        now_us: u64,
        scope: Prefix,
        pointers: Vec<Pointer>,
        tops: Vec<Target>,
        outs: &mut Vec<Output>,
    ) {
        self.refresh_tops(tops);
        match self.phase {
            Phase::Downloading => {
                if scope != self.eigenstring() {
                    return; // stale reply for a different scope
                }
                self.take_rpc(|p| matches!(p.kind, RpcKind::JoinDownload));
                self.peers = PeerList::new(scope);
                for p in pointers {
                    self.install_downloaded(p, now_us);
                }
                self.reconcile_tops_with_window();
                self.last_self_refresh_us = now_us;
                self.phase = Phase::Active;
                outs.push(Output::Joined);
                outs.extend(self.startup_timers());
                // Reconcile after the join multicast has had time to make
                // us visible to forwarders (a few RPC rounds).
                outs.push(Output::SetTimer {
                    delay_us: 4 * self.cfg.rpc_timeout_us,
                    timer: Timer::Reconcile,
                });
                // §4.3 step 4: multicast our joining around our audience set.
                self.seq += 1;
                #[cfg(feature = "trace")]
                self.tr(
                    CauseId::new(self.me.0, self.seq),
                    TraceEventKind::JoinStep {
                        phase: JoinPhase::Active,
                    },
                );
                let event = self.self_event(now_us, EventKind::Join);
                self.report_event(now_us, event, outs);
            }
            Phase::Active => {
                // Post-join reconciliation: merge-only, never re-scope.
                if scope == self.eigenstring()
                    && self
                        .take_rpc(|p| matches!(p.kind, RpcKind::Reconcile))
                        .is_some()
                {
                    for ptr in pointers {
                        if !self.peers.contains(ptr.id) {
                            self.install_downloaded(ptr, now_us);
                        }
                    }
                    return;
                }
                // Level-raise download completing.
                let me = self.me;
                let pending = self.take_rpc(
                    |p| matches!(&p.kind, RpcKind::RaiseDownload { new_level } if new_level.eigenstring(me) == scope),
                );
                let Some(p) = pending else { return };
                let RpcKind::RaiseDownload { new_level } = p.kind else {
                    return;
                };
                self.last_shift_us = now_us;
                let old = self.level;
                self.level = new_level;
                self.peers.set_scope(scope);
                for ptr in pointers {
                    if !self.peers.contains(ptr.id) {
                        self.install_downloaded(ptr, now_us);
                    }
                }
                self.reconcile_tops_with_window();
                outs.push(Output::LevelShifted {
                    from: old,
                    to: new_level,
                });
                self.seq += 1;
                #[cfg(feature = "trace")]
                self.tr(
                    CauseId::new(self.me.0, self.seq),
                    TraceEventKind::LevelShift {
                        from: old.0,
                        to: new_level.0,
                    },
                );
                let event = self.self_event_with(now_us, EventKind::LevelShift { from: old });
                self.report_event(now_us, event, outs);
            }
            _ => {}
        }
    }

    /// Drops top-list entries a just-downloaded window proves gone:
    /// entries our scope covers but the authoritative pointer list does
    /// not contain. A leave multicast only reaches the subject's §2
    /// audience, so a node outside it (e.g. at a deeper level) keeps the
    /// departed top until the §4.5 lazy heal times a report out against
    /// it — but a level raise must not carry that stale entry *into* its
    /// own scope, where the top-containment invariant holds. Found by
    /// the invariants sweep: [Join(1), Join(2), Shift(1, 1), Leave(2)].
    fn reconcile_tops_with_window(&mut self) {
        let scope = self.eigenstring();
        let stale: Vec<NodeId> = self
            .tops
            .entries()
            .iter()
            .filter(|t| t.id != self.me && scope.contains(t.id) && !self.peers.contains(t.id))
            .map(|t| t.id)
            .collect();
        for id in stale {
            self.tops.remove(id);
        }
    }

    fn startup_timers(&self) -> Vec<Output> {
        vec![
            Output::SetTimer {
                delay_us: self.cfg.probe_interval_us,
                timer: Timer::Probe,
            },
            Output::SetTimer {
                delay_us: self.cfg.bandwidth_window_us,
                timer: Timer::Adapt,
            },
            Output::SetTimer {
                delay_us: self.cfg.bandwidth_window_us,
                timer: Timer::Refresh,
            },
            Output::SetTimer {
                delay_us: self.cfg.bandwidth_window_us,
                timer: Timer::Expire,
            },
        ]
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_timer(&mut self, now_us: u64, timer: Timer, outs: &mut Vec<Output>) {
        match timer {
            Timer::Probe => {
                if self.phase == Phase::Active {
                    self.probe_successor(outs);
                }
                outs.push(Output::SetTimer {
                    delay_us: self.cfg.probe_interval_us,
                    timer: Timer::Probe,
                });
            }
            Timer::RpcTimeout(token) => self.on_rpc_timeout(now_us, token, outs),
            Timer::Adapt => {
                if self.phase == Phase::Active {
                    self.adapt_level(now_us, outs);
                }
                outs.push(Output::SetTimer {
                    delay_us: self.cfg.bandwidth_window_us,
                    timer: Timer::Adapt,
                });
            }
            Timer::Refresh => {
                // The timer ticks at the adaptation cadence and sends the
                // §4.6 refresh only when 2·LT_level has elapsed since our
                // last announcement, so the period tracks the measured
                // lifetimes as they evolve.
                if self.phase == Phase::Active
                    && now_us.saturating_sub(self.last_self_refresh_us) >= self.refresh_period_us()
                {
                    self.last_self_refresh_us = now_us;
                    self.seq += 1;
                    let event = self.self_event(now_us, EventKind::Refresh);
                    self.report_event(now_us, event, outs);
                }
                outs.push(Output::SetTimer {
                    delay_us: self.cfg.bandwidth_window_us,
                    timer: Timer::Refresh,
                });
            }
            Timer::Expire => {
                if self.phase == Phase::Active {
                    self.expire_stale(now_us);
                }
                outs.push(Output::SetTimer {
                    delay_us: self.cfg.bandwidth_window_us,
                    timer: Timer::Expire,
                });
            }
            Timer::Reconcile => {
                if self.cfg.reconcile_interval_us > 0 {
                    outs.push(Output::SetTimer {
                        delay_us: self.cfg.reconcile_interval_us,
                        timer: Timer::Reconcile,
                    });
                }
                if self.phase == Phase::Active {
                    if let Some(top) = self.tops.choose(&[], |n| self.rand_below(n)) {
                        if top.id != self.me {
                            let scope = self.eigenstring();
                            self.send_rpc(
                                outs,
                                top,
                                Message::Download { scope },
                                RpcKind::Reconcile,
                                0,
                            );
                        }
                    }
                    // Re-announce ourselves once (a one-shot §4.6 refresh):
                    // nodes that were themselves mid-join when our join
                    // event multicast ran could not have been reached.
                    self.last_self_refresh_us = now_us;
                    self.seq += 1;
                    let event = self.self_event(now_us, EventKind::Refresh);
                    self.report_event(now_us, event, outs);
                }
            }
        }
    }

    /// §4.6: refresh every `refresh_multiplier · LT_l` for our level; a
    /// generous default before any lifetime has been observed.
    fn refresh_period_us(&self) -> u64 {
        match self.lifetimes.mean_us(self.level) {
            Some(lt) => (self.cfg.refresh_multiplier * lt as f64) as u64,
            None => self.cfg.default_refresh_us,
        }
        .max(self.cfg.bandwidth_window_us)
    }

    fn expire_stale(&mut self, now_us: u64) {
        let mult = self.cfg.expire_multiplier;
        // Floor the horizon well above the tick/refresh quantisation so a
        // slightly late refresh can never evict a live neighbor.
        let floor_us = 3 * self.cfg.bandwidth_window_us;
        let lifetimes = &self.lifetimes;
        let removed = self.peers.expire(|lvl| {
            match lifetimes.mean_us(lvl) {
                // deadline: entries older than expire_multiplier · LT_l die
                Some(lt) => now_us.saturating_sub(((mult * lt as f64) as u64).max(floor_us)),
                None => 0, // no estimate yet: never expire
            }
        });
        self.stats.expired += removed.len() as u64;
        #[cfg(feature = "trace")]
        if !removed.is_empty() {
            self.tr(
                CauseId::NONE,
                TraceEventKind::PeersExpired {
                    count: removed.len() as u32,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Failure detection (§4.1)
    // ------------------------------------------------------------------

    fn probe_successor(&mut self, outs: &mut Vec<Output>) {
        // Only one outstanding probe at a time.
        if self
            .pending
            .values()
            .any(|p| matches!(p.kind, RpcKind::Probe))
        {
            return;
        }
        let succ = match self.cfg.probe_scope {
            ProbeScope::Group => self
                .peers
                .ring_successor_in_group(self.me, self.eigenstring(), self.level)
                // §4.1 probes within the same-level eigenstring group, but
                // heterogeneous levels can leave that group a singleton: after
                // a neighbor shifts level it is no longer anyone's group
                // successor, and its crash would go undetected forever. Found
                // by the invariants sweep (trace [Join, Shift, Crash] ends
                // with a permanently stale peer entry). Fall back to the
                // whole-peer-list ring — same one-probe-per-interval cost.
                .or_else(|| self.peers.ring_successor(self.me)),
            ProbeScope::PeerList => self.peers.ring_successor(self.me),
        };
        // Cross-level fallback (ROADMAP "lazy detection of off-level
        // crashes", found by the model checker at depth 4): a peer alone
        // in its eigenstring group — e.g. the seed after shifting to a
        // level nobody else occupies — is in *nobody's* group ring, and
        // with no lifetime samples at its level, expiry never fires
        // either, so its crash would hold a departed pointer forever.
        // The XOR-nearest observer (computed over its own view, peers
        // plus self — near-identical views elect the same node) therefore
        // alternates its probe interval between the normal ring successor
        // and a round-robin over such "lonely" peers. Responsibility MUST
        // be unique-ish: if every observer probed every lonely peer, a
        // deep-level node in an N-node system would absorb N probe/ack
        // pairs per interval — sustained load that keeps a small-budget
        // node (the usual reason to sit deep) from ever climbing back
        // (found by the adaptation recovery test). Detection cost is
        // bounded: one probe per interval as before, the ring cadence at
        // worst halves for the one responsible observer, and if that
        // observer dies its own obituary hands the role to the next
        // nearest. A false positive is safe — the obituary's courtesy
        // copy lets a live target refute (DESIGN.md gap 13).
        let lonely: Vec<Target> = match self.cfg.probe_scope {
            ProbeScope::Group => self
                .peers
                .iter()
                .filter(|p| {
                    let group = p.level.eigenstring(p.id);
                    self.peers.count_group(group, p.level) == 1
                        && !(p.level == self.level && group == self.eigenstring())
                        && {
                            let mine = self.me.0 ^ p.id.0;
                            self.peers
                                .iter()
                                .all(|q| q.id == p.id || (q.id.0 ^ p.id.0) >= mine)
                        }
                })
                .map(|p| Target {
                    id: p.id,
                    addr: p.addr,
                    level: p.level,
                })
                .collect(),
            ProbeScope::PeerList => Vec::new(),
        };
        let round = self.stats.probes_sent;
        let target = if !lonely.is_empty() && (succ.is_none() || round % 2 == 1) {
            lonely[(round / 2) as usize % lonely.len()]
        } else {
            let Some(succ) = succ else { return };
            Target {
                id: succ.id,
                addr: succ.addr,
                level: succ.level,
            }
        };
        self.stats.probes_sent += 1;
        #[cfg(feature = "trace")]
        self.tr(
            CauseId::NONE,
            TraceEventKind::ProbeSent {
                target: target.id.0,
            },
        );
        self.send_rpc(outs, target, Message::Probe, RpcKind::Probe, 0);
    }

    fn on_probe_failure(&mut self, now_us: u64, dead: Target, outs: &mut Vec<Output>) {
        self.stats.failures_detected += 1;
        // The detector is an observer too: feed the departed node's
        // lifetime into the §4.6 estimator, exactly as applying the
        // leave event would — `apply_event`'s Leave arm cannot, because
        // by the time the self-originated event reaches it the pointer
        // is already gone. Without this the detector keeps the generous
        // no-estimate refresh default while every *other* observer
        // tightens its expiry horizon from the same departure, and the
        // detector's own entry is the first to be (wrongly) expired.
        // Found by the depth-4 sweep: [Join(1), Join(2), Crash(2),
        // Shift(0, 1)].
        if let Some(old) = self.peers.remove(dead.id) {
            if old.first_seen_us > 0 && now_us > old.first_seen_us {
                self.lifetimes.record(old.level, now_us - old.first_seen_us);
            }
        }
        outs.push(Output::FailureDetected { dead: dead.id });
        #[cfg(feature = "trace")]
        self.tr(
            CauseId::new(dead.id.0, LEAVE_SEQ),
            TraceEventKind::Obituary { subject: dead.id.0 },
        );
        let event = StateEvent {
            subject: dead.id,
            addr: dead.addr,
            level: dead.level,
            kind: EventKind::Leave,
            seq: LEAVE_SEQ,
            origin_us: now_us,
            info: Bytes::new(),
        };
        self.report_event(now_us, event.clone(), outs);
        // Courtesy copy straight to the condemned node. The §4.2
        // dissection excludes the changing node from its own audience,
        // so a false positive (three lost probe acks, §4.1) would
        // otherwise stay invisible until its next periodic refresh —
        // past the horizon of anyone who expires it first. Truly dead
        // nodes ignore the datagram; live ones refute immediately (see
        // `refute_false_obituary`). `ID_BITS` as the step makes the
        // copy a leaf: a non-Active receiver that still processes it
        // computes zero forwards.
        if !self.gap13_suppressed() {
            self.send(
                outs,
                dead,
                Message::Multicast {
                    event,
                    step: ID_BITS,
                },
                0,
            );
        }
        // §4.1: "redirects its probing to the next neighbor, and then
        // immediately detects C's failure" — probe the new successor now.
        self.probe_successor(outs);
    }

    // ------------------------------------------------------------------
    // Events: application, reporting, multicast (§2, §4.2)
    // ------------------------------------------------------------------

    fn self_event(&self, now_us: u64, kind: EventKind) -> StateEvent {
        self.self_event_with(now_us, kind)
    }

    fn self_event_with(&self, now_us: u64, kind: EventKind) -> StateEvent {
        StateEvent {
            subject: self.me,
            addr: self.addr,
            level: self.level,
            kind,
            seq: self.seq,
            origin_us: now_us,
            info: self.info.clone(),
        }
    }

    /// §4.6 false-obituary refutation: we just heard our own departure
    /// announced while very much alive (three lost probe acks suffice at
    /// Internet loss rates, §4.1). Re-announce immediately — the
    /// refresh's later origin re-admits us everywhere and demotes
    /// lingering obituary copies to duplicates (see [`Self::dedup_admit`]).
    /// Waiting for the periodic §4.6 refresh instead would leave us
    /// invisible for up to a full refresh period. Returns whether the
    /// event was such an obituary (and was refuted).
    fn refute_false_obituary(
        &mut self,
        now_us: u64,
        event: &StateEvent,
        outs: &mut Vec<Output>,
    ) -> bool {
        if event.subject != self.me || !event.kind.is_removal() || self.phase != Phase::Active {
            return false;
        }
        if self.gap13_suppressed() {
            return false;
        }
        self.last_self_refresh_us = now_us;
        self.seq += 1;
        #[cfg(feature = "trace")]
        self.tr(
            CauseId::new(self.me.0, self.seq),
            TraceEventKind::Refutation,
        );
        let refute = self.self_event(now_us, EventKind::Refresh);
        self.report_event(now_us, refute, outs);
        true
    }

    /// Routes an event towards a top node (or multicasts directly when we
    /// are a top node ourselves).
    fn report_event(&mut self, now_us: u64, event: StateEvent, outs: &mut Vec<Output>) {
        if self.believes_top() && self.phase == Phase::Active {
            self.start_multicast(now_us, event, outs);
            return;
        }
        let mut dead = self.report_dead.clone();
        // Never report to ourselves: a node able to root this multicast
        // would have taken the believes_top branch above. Our own
        // top-list entry goes stale the instant we shift off level 0 —
        // picking it would root the multicast at our new (narrower)
        // level and the rest of the id space would never hear the event.
        // (Found by the invariants sweep: [Join, Shift(seed, 1)].)
        dead.push(self.me);
        // Prefer top-list entries that actually cover the subject (their
        // eigenstring prefixes its id); in a split system the others
        // belong to foreign parts and cannot root this multicast.
        let covering: Vec<Target> = self
            .tops
            .entries()
            .iter()
            .filter(|t| {
                !dead.contains(&t.id) && t.id.prefix(t.level.value()).contains(event.subject)
            })
            .copied()
            .collect();
        let top = if covering.is_empty() {
            self.tops.choose(&dead, |n| self.rand_below(n))
        } else {
            Some(covering[self.rand_below(covering.len())])
        };
        let Some(top) = top else {
            // All tops stale: fall back to asking any peer (§4.5).
            self.fetch_top_list(outs, Some(event));
            return;
        };
        self.send_rpc(
            outs,
            top,
            Message::Report { event },
            RpcKind::Report {
                event: placeholder(),
            },
            0,
        );
    }

    /// Announces a downward level shift (`old` → the already-updated
    /// `self.level`), then narrows the peer-list scope.
    ///
    /// Ordering is load-bearing. A node that *was* top is the only
    /// guaranteed root for its own shift event — its top list can be just
    /// itself (a seed), and every other entry may belong to a foreign
    /// part — so it must multicast from the old step over the still-wide
    /// peer list *before* dropping the out-of-scope entries. Found by the
    /// invariants sweep: trace `[Join, Shift(seed, 1)]` left the joiner
    /// permanently recording the seed at level 0.
    fn announce_lowered(&mut self, now_us: u64, old: Level, outs: &mut Vec<Output>) {
        outs.push(Output::LevelShifted {
            from: old,
            to: self.level,
        });
        self.seq += 1;
        #[cfg(feature = "trace")]
        self.tr(
            CauseId::new(self.me.0, self.seq),
            TraceEventKind::LevelShift {
                from: old.0,
                to: self.level.0,
            },
        );
        let event = self.self_event_with(now_us, EventKind::LevelShift { from: old });
        if old.is_top() && self.phase == Phase::Active {
            if self.apply_event(now_us, &event) {
                self.forward_event(now_us, &event, old.value(), outs);
            }
            self.peers.set_scope(self.eigenstring());
        } else {
            self.peers.set_scope(self.eigenstring());
            self.report_event(now_us, event, outs);
        }
    }

    /// Applies an event locally and forwards it from `step = our level`
    /// (the root role in §4.2).
    fn start_multicast(&mut self, now_us: u64, event: StateEvent, outs: &mut Vec<Output>) {
        if self.apply_event(now_us, &event) {
            let step = self.level.value();
            #[cfg(feature = "trace")]
            self.tr(
                CauseId::new(event.subject.0, event.seq),
                TraceEventKind::McastRoot {
                    class: Self::trace_event_class(&event.kind),
                    step,
                },
            );
            self.forward_event(now_us, &event, step, outs);
        }
    }

    /// Computes and issues the §4.2 forwards for an event we are
    /// responsible for at `step`.
    fn forward_event(
        &mut self,
        _now_us: u64,
        event: &StateEvent,
        step: u8,
        outs: &mut Vec<Output>,
    ) {
        let forwards = forward_steps(&self.peers, self.me, step, event.subject);
        for f in forwards {
            self.stats.forwards += 1;
            #[cfg(feature = "trace")]
            self.tr(
                CauseId::new(event.subject.0, event.seq),
                TraceEventKind::McastHop {
                    class: Self::trace_event_class(&event.kind),
                    child: f.target.id.0,
                    step: f.next_step,
                },
            );
            let range = self
                .me
                .prefix(f.next_step - 1)
                .child(!self.me.bit(f.next_step - 1));
            self.send_rpc(
                outs,
                f.target,
                Message::Multicast {
                    event: event.clone(),
                    step: f.next_step,
                },
                RpcKind::McastForward {
                    event: event.clone(),
                    range,
                },
                self.cfg.processing_delay_us,
            );
        }
    }

    /// Installs a pointer obtained from a bulk download. Downloads carry
    /// no age information (`first_seen_us` may be 0 = unknown); unknown
    /// ages are preserved so they never contaminate the §4.6 lifetime
    /// estimator with short observation spans.
    fn install_downloaded(&mut self, mut ptr: Pointer, now_us: u64) {
        if ptr.id == self.me || self.known_departed(ptr.id) {
            // A downloaded list races with leave multicasts exactly like
            // a piggybacked top list does (see `refresh_tops`): the
            // leave we already applied can never purge a re-admitted
            // entry. Downloads carry no origin time to compare, so skip
            // conservatively — a live node's §4.6 refresh re-admits.
            return;
        }
        ptr.last_refresh_us = now_us;
        self.peers.insert(ptr);
    }

    /// Whether `event` is fresh w.r.t. the dedup horizon, updating it.
    fn dedup_admit(&mut self, event: &StateEvent) -> bool {
        let e = self.seen.entry(event.subject).or_insert((0, 0, false));
        // Removals carry the sentinel seq, so ordering falls entirely to
        // the origin timestamp: a removal that originated no later than
        // the subject's newest known announcement is stale information —
        // the subject has demonstrably outlived it. Without this, a
        // lingering copy of a refuted false obituary (§4.1 probe
        // misfire) re-kills the entry on arrival, since the sentinel
        // always wins the seq comparison.
        let stale = if event.kind.is_removal() {
            event.origin_us <= e.1
        } else {
            event.seq <= e.0 && event.origin_us <= e.1
        };
        if stale {
            self.stats.events_duped += 1;
            return false;
        }
        e.0 = e.0.max(event.seq);
        e.1 = e.1.max(event.origin_us);
        e.2 = event.kind.is_removal();
        true
    }

    /// Whether the freshest event we applied for `id` was a removal —
    /// i.e. the node departed and nothing newer has overridden that.
    fn known_departed(&self, id: NodeId) -> bool {
        self.seen.get(&id).is_some_and(|e| e.2)
    }

    /// Applies an event to the local peer list; returns `true` when fresh.
    fn apply_event(&mut self, now_us: u64, event: &StateEvent) -> bool {
        let subject = event.subject;
        if subject == self.me {
            // Our own event coming back (we initiated it): fresh only when
            // we have not seen it, so the initiating call forwards once.
            return self.dedup_admit(&event.clone());
        }
        if !self.dedup_admit(event) {
            return false;
        }
        self.stats.events_applied += 1;
        // Keep the top-node list's recorded levels in sync (stale levels
        // there misroute reports and break the believes_top judgement).
        if event.kind.is_removal() {
            self.tops.remove(subject);
        } else if event.level.is_top() {
            // A level-0 subject IS a top node: admit it, don't just sync
            // an existing entry. Piggyback alone never seeds the list of
            // a node that was born top (its own FindTop replies are
            // self-only), and an empty list leaves believes_top()
            // vacuously true after that node later lowers itself — it
            // then answers FindTop with itself and roots joins below
            // step 0, so part of the id space never hears them. Found by
            // the invariants sweep: [Join, Shift(seed, 1), Join].
            self.refresh_tops([Target {
                id: subject,
                addr: event.addr,
                level: event.level,
            }]);
        } else {
            self.tops.note_level(subject, event.level);
        }
        if !self.eigenstring().contains(subject) {
            // Outside our scope: we still forward (we may be a top node of
            // a part that covers it — then it IS in scope; otherwise this
            // is a routing artefact) but do not store.
            return true;
        }
        match event.kind {
            EventKind::Leave => {
                if let Some(old) = self.peers.remove(subject) {
                    if old.first_seen_us > 0 && event.origin_us > old.first_seen_us {
                        self.lifetimes
                            .record(old.level, event.origin_us - old.first_seen_us);
                    }
                }
                // Purge the top-node list too: a departed top would
                // otherwise absorb (and lose) reports until every node
                // individually timed out against it (§4.5's lazy
                // maintenance heals much faster with this).
                self.tops.remove(subject);
                // A later-originating event (a rejoin, or a refresh from a
                // falsely-declared node) re-admits via the origin clause.
            }
            EventKind::Join => {
                let ptr = event.to_pointer(now_us);
                self.peers.insert(ptr);
            }
            EventKind::LevelShift { .. } | EventKind::InfoChange | EventKind::Refresh => {
                if self.peers.contains(subject) {
                    self.peers.update_level(subject, event.level);
                    self.peers.update_info(subject, event.info.clone(), now_us);
                } else {
                    // Absent pointer: §4.6 — the refresh revives it. The
                    // node's true join time is unknown; a zero first-seen
                    // keeps it out of the lifetime estimator.
                    let mut ptr = event.to_pointer(now_us);
                    ptr.first_seen_us = 0;
                    self.peers.insert(ptr);
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Level adaptation (autonomy, §2/§4.3)
    // ------------------------------------------------------------------

    fn adapt_level(&mut self, now_us: u64, outs: &mut Vec<Output>) {
        // Cooldown: measure a full fresh window at the new level before
        // deciding again, or every shift begets another.
        if now_us.saturating_sub(self.last_shift_us) < self.cfg.bandwidth_window_us {
            return;
        }
        let cost = self.meter.bps(now_us);
        // Debounce: one noisy window must not trigger a (system-wide
        // multicast) shift; require two consecutive windows agreeing.
        if cost > self.threshold_bps && self.level != Level::MAX {
            self.adapt_pressure = self.adapt_pressure.max(0) + 1;
        } else if cost < self.threshold_bps * self.cfg.grow_fraction && !self.level.is_top() {
            self.adapt_pressure = self.adapt_pressure.min(0) - 1;
        } else {
            self.adapt_pressure = 0;
        }
        if self.adapt_pressure >= 2 && self.level != Level::MAX {
            self.adapt_pressure = 0;
            // Over budget: shrink the peer list.
            self.last_shift_us = now_us;
            let old = self.level;
            self.level = self.level.lowered();
            self.announce_lowered(now_us, old, outs);
        } else if self.adapt_pressure <= -4 && !self.level.is_top() {
            self.adapt_pressure = 0;
            // Under budget: try to grow, if our part allows it.
            let part_top_level = self
                .tops
                .entries()
                .iter()
                .map(|t| t.level)
                .min()
                .unwrap_or(Level::TOP);
            if self.level.value() <= part_top_level.value() {
                return; // already as strong as our part's tops
            }
            if self
                .pending
                .values()
                .any(|p| matches!(p.kind, RpcKind::RaiseDownload { .. }))
            {
                return; // raise already in flight
            }
            let new_level = self.level.raised();
            let scope = new_level.eigenstring(self.me);
            let Some(top) = self.tops.choose(&[], |n| self.rand_below(n)) else {
                return;
            };
            self.send_rpc(
                outs,
                top,
                Message::Download { scope },
                RpcKind::RaiseDownload { new_level },
                0,
            );
        }
    }

    // ------------------------------------------------------------------
    // Commands
    // ------------------------------------------------------------------

    fn on_command(&mut self, now_us: u64, cmd: Command, outs: &mut Vec<Output>) {
        match cmd {
            Command::ChangeInfo(info) => {
                self.info = info;
                if self.phase == Phase::Active {
                    self.seq += 1;
                    let event = self.self_event(now_us, EventKind::InfoChange);
                    self.report_event(now_us, event, outs);
                }
            }
            Command::SetThreshold(bps) => self.threshold_bps = bps,
            Command::SetLevel(target) => {
                if self.phase != Phase::Active || target == self.level {
                    return;
                }
                self.last_shift_us = now_us;
                if target.value() > self.level.value() {
                    // Weaker: shrink in place and announce.
                    let old = self.level;
                    self.level = target;
                    self.announce_lowered(now_us, old, outs);
                } else {
                    // Stronger: download the wider list first (§4.3).
                    let scope = target.eigenstring(self.me);
                    if let Some(top) = self.tops.choose(&[], |n| self.rand_below(n)) {
                        self.send_rpc(
                            outs,
                            top,
                            Message::Download { scope },
                            RpcKind::RaiseDownload { new_level: target },
                            0,
                        );
                    }
                }
            }
            Command::Shutdown => {
                if self.phase == Phase::Active {
                    let event = StateEvent {
                        subject: self.me,
                        addr: self.addr,
                        level: self.level,
                        kind: EventKind::Leave,
                        seq: LEAVE_SEQ,
                        origin_us: now_us,
                        info: Bytes::new(),
                    };
                    self.report_event(now_us, event, outs);
                    // §4.3: drain the announcement (retries and redirects
                    // included) before going silent. Going Left at once
                    // abandons the multicast's RPC state — a forward
                    // addressed to a not-yet-detected crash then dies
                    // with no redirect, hiding the leave from an entire
                    // subtree until §4.6 expiry. Found by the invariant
                    // checker's full-sim companion test (crash 1.5 s
                    // before a graceful leave).
                    self.phase = Phase::Leaving;
                    return;
                }
                self.phase = Phase::Left;
            }
        }
    }

    // ------------------------------------------------------------------
    // RPC plumbing
    // ------------------------------------------------------------------

    fn send(&mut self, outs: &mut Vec<Output>, to: Target, msg: Message, delay_us: u64) {
        self.stats.tx_msgs += 1;
        let bits = msg.wire_bits(&self.cfg);
        self.stats.tx_bits += bits;
        #[cfg(feature = "trace")]
        self.tr(
            Self::trace_cause(&msg),
            TraceEventKind::MsgSend {
                to: to.id.0,
                class: msg.trace_class(),
                bits,
            },
        );
        outs.push(Output::Send { to, msg, delay_us });
    }

    fn send_rpc(
        &mut self,
        outs: &mut Vec<Output>,
        to: Target,
        msg: Message,
        kind: RpcKind,
        delay_us: u64,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        // Fix up the placeholder hack for Report (see report_event).
        let kind = match (&kind, &msg) {
            (RpcKind::Report { .. }, Message::Report { event }) => RpcKind::Report {
                event: event.clone(),
            },
            _ => kind,
        };
        self.pending.insert(
            token,
            PendingRpc {
                target: to,
                msg: msg.clone(),
                attempts: 1,
                kind,
            },
        );
        self.send(outs, to, msg, delay_us);
        outs.push(Output::SetTimer {
            delay_us: delay_us + self.cfg.rpc_timeout_us,
            timer: Timer::RpcTimeout(token),
        });
    }

    /// Removes the first pending RPC matching `pred` (reply arrived).
    fn resolve_rpc(&mut self, pred: impl Fn(&PendingRpc) -> bool) {
        if let Some((&token, _)) = self.pending.iter().find(|(_, p)| pred(p)) {
            self.pending.remove(&token);
        }
    }

    /// Removes and returns the first pending RPC matching `pred`.
    fn take_rpc(&mut self, pred: impl Fn(&PendingRpc) -> bool) -> Option<PendingRpc> {
        let token = self
            .pending
            .iter()
            .find(|(_, p)| pred(p))
            .map(|(&t, _)| t)?;
        self.pending.remove(&token)
    }

    fn on_rpc_timeout(&mut self, now_us: u64, token: u64, outs: &mut Vec<Output>) {
        let Some(mut p) = self.pending.remove(&token) else {
            return; // already resolved
        };
        if p.attempts < self.cfg.max_attempts {
            p.attempts += 1;
            self.stats.rpc_retries += 1;
            let new_token = self.next_token;
            self.next_token += 1;
            self.send(outs, p.target, p.msg.clone(), 0);
            outs.push(Output::SetTimer {
                delay_us: self.backoff_wait_us(p.attempts),
                timer: Timer::RpcTimeout(new_token),
            });
            self.pending.insert(new_token, p);
            return;
        }
        // Give up after max_attempts.
        match p.kind {
            RpcKind::Probe => self.on_probe_failure(now_us, p.target, outs),
            RpcKind::McastForward { event, range } => {
                // §4.2: remove the stale pointer and redirect. The paper
                // removes it *quietly*, but a quiet removal races §4.1:
                // the forwarder that drops the dead node is — by the
                // prefix-routing structure — usually its ring prober, so
                // the failure would never be reported and every other
                // audience member would keep the stale entry until the
                // §4.6 expiry. On the other hand, reporting a leave
                // straight away turns every triple packet loss into a
                // false obituary multicast. So: remove locally and
                // redirect now (delivery continuity), and *verify* the
                // suspect with a probe — the probe's own give-up path
                // reports the leave only if the node is really gone
                // (DESIGN.md clarification).
                self.stats.stale_dropped += 1;
                if let Some(old) = self.peers.remove(p.target.id) {
                    let suspect = Target {
                        id: old.id,
                        addr: old.addr,
                        level: old.level,
                    };
                    self.send_rpc(outs, suspect, Message::Probe, RpcKind::Probe, 0);
                }
                if let Some(next) = crate::multicast::redirect_target(
                    &self.peers,
                    range,
                    event.subject,
                    self.me,
                    &[],
                ) {
                    let step = range.len();
                    #[cfg(feature = "trace")]
                    self.tr(
                        CauseId::new(event.subject.0, event.seq),
                        TraceEventKind::McastRedirect {
                            class: Self::trace_event_class(&event.kind),
                            old: p.target.id.0,
                            new: next.id.0,
                            step,
                        },
                    );
                    self.send_rpc(
                        outs,
                        next,
                        Message::Multicast {
                            event: event.clone(),
                            step,
                        },
                        RpcKind::McastForward { event, range },
                        0,
                    );
                }
            }
            RpcKind::Report { event } => {
                self.tops.remove(p.target.id);
                self.report_dead.push(p.target.id);
                self.report_event(now_us, event, outs);
            }
            RpcKind::JoinFindTop | RpcKind::JoinLevelQuery | RpcKind::JoinDownload => {
                // Try another known top; if none, the join fails.
                let dead = vec![p.target.id];
                self.tops.remove(p.target.id);
                if let Some(top) = self.tops.choose(&dead, |n| self.rand_below(n)) {
                    let kind = p.kind;
                    self.send_rpc(outs, top, p.msg, kind, 0);
                } else {
                    self.fail(outs, ProtocolError::NoReachableTop);
                }
            }
            RpcKind::RaiseDownload { .. } => {
                // Abort the raise and forget the unresponsive top so the
                // next attempt picks a live one.
                self.tops.remove(p.target.id);
            }
            RpcKind::Reconcile => { /* §4.6 refresh will heal eventually */ }
            RpcKind::TopListFetch { resume } => {
                // Try one more random peer, then drop the event (it will
                // self-heal via §4.6).
                self.fetch_top_list(outs, resume);
            }
        }
    }

    fn fetch_top_list(&mut self, outs: &mut Vec<Output>, resume: Option<StateEvent>) {
        if self
            .pending
            .values()
            .any(|p| matches!(p.kind, RpcKind::TopListFetch { .. }))
        {
            return;
        }
        let n = self.peers.len();
        if n == 0 {
            return;
        }
        let idx = self.rand_below(n);
        let Some(ptr) = self.peers.iter().nth(idx) else {
            return;
        };
        let target = Target {
            id: ptr.id,
            addr: ptr.addr,
            level: ptr.level,
        };
        self.send_rpc(
            outs,
            target,
            Message::TopListRequest,
            RpcKind::TopListFetch { resume },
            0,
        );
    }

    /// Merges piggybacked top-node pointers, dropping any entry for
    /// ourselves. Peers legitimately list us among the tops of the part,
    /// but storing a self-entry is poison: it is never level-synced (we
    /// do not apply our own events), and a later level raise can pick it
    /// and "download" from ourselves — an empty list — leaving the shift
    /// announced to nobody. Found by the invariants sweep:
    /// [Join, Shift(1), Shift(0)].
    /// Also drops entries for nodes whose freshest known event was a
    /// removal: piggybacked top lists race with leave multicasts, and a
    /// stale list arriving after we applied the leave would re-seed the
    /// departed node forever — the leave is inside the dedup horizon and
    /// can never purge it again. A rejoin or refresh (fresh by the
    /// origin clause) clears the flag and re-admits through
    /// `apply_event`. Found by the invariants sweep at depth 4:
    /// [Join(1), Join(2), Shift(1, 1), Leave(2)].
    fn refresh_tops(&mut self, fresh: impl IntoIterator<Item = Target>) {
        let me = self.me;
        let fresh: Vec<Target> = fresh
            .into_iter()
            .filter(|t| t.id != me && !self.known_departed(t.id))
            .collect();
        self.tops.refresh(fresh);
    }

    fn piggyback_tops(&self) -> Vec<Target> {
        if self.believes_top() {
            // §4.5: a top node hands out tops of its own part — itself and
            // its same-group peers from the (fully connected) peer list.
            let mut tops: Vec<Target> = self
                .peers
                .iter_prefix(self.eigenstring())
                .filter(|ptr| ptr.level == self.level)
                .take(self.tops.capacity().saturating_sub(1))
                .map(|ptr| Target {
                    id: ptr.id,
                    addr: ptr.addr,
                    level: ptr.level,
                })
                .collect();
            tops.insert(0, self.as_target());
            tops.truncate(self.tops.capacity());
            tops
        } else {
            self.tops.piggyback(NodeId(0))
        }
    }

    /// Retry wait before attempt `attempt + 1`: exponential backoff over
    /// the base RPC timeout, capped, stretched by deterministic jitter
    /// (the paper retries at the fixed `rpc_timeout_us`; that cadence
    /// resonates with bursty loss and post-partition retry storms —
    /// every node re-sends in lockstep — so retries now spread out).
    fn backoff_wait_us(&self, attempt: u32) -> u64 {
        let base = self.cfg.rpc_timeout_us.max(1);
        let mult = self.cfg.rpc_backoff_mult.max(1.0);
        let wait = (base as f64 * mult.powi(attempt.saturating_sub(1) as i32))
            .min(self.cfg.rpc_backoff_max_us.max(base) as f64) as u64;
        let span = (wait as f64 * self.cfg.rpc_backoff_jitter.clamp(0.0, 1.0)) as u64;
        if span == 0 {
            wait
        } else {
            // rand_below keys off next_token, which on_rpc_timeout just
            // advanced — each retry draws fresh jitter.
            wait + self.rand_below(span as usize + 1) as u64
        }
    }

    /// Deterministic xorshift, used where the paper says "randomly".
    fn rand_below(&self, n: usize) -> usize {
        debug_assert!(n > 0);
        let mut x = self.rng ^ self.next_token.wrapping_mul(0x9E3779B97F4A7C15);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % n as u64) as usize
    }
}

/// Placeholder event used only to tag the RPC kind before `send_rpc`
/// clones the real event out of the message (avoids a double clone).
fn placeholder() -> StateEvent {
    StateEvent {
        subject: NodeId(0),
        addr: Addr(0),
        level: Level::TOP,
        kind: EventKind::Refresh,
        seq: 0,
        origin_us: 0,
        info: Bytes::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// A deliberately tiny event loop: enough to drive a handful of
    /// machines end-to-end without the full simulator.
    struct MiniNet {
        machines: Vec<NodeMachine>,
        queue: BinaryHeap<std::cmp::Reverse<(u64, u64, usize, MiniInput)>>,
        seq: u64,
        now: u64,
        latency_us: u64,
        /// Addresses that silently drop all traffic (crashed nodes).
        dead: Vec<bool>,
        outputs: Vec<(usize, Output)>,
        /// Message payloads, parked outside the ordered queue key.
        parked: Vec<(NodeId, Addr, Message)>,
    }

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    enum MiniInput {
        Msg { from: usize, msg_idx: usize },
        Timer(u8, u64), // discriminant, token
    }

    impl MiniNet {
        fn new() -> Self {
            MiniNet {
                machines: Vec::new(),
                queue: BinaryHeap::new(),
                seq: 0,
                now: 0,
                latency_us: 10_000, // 10 ms
                dead: Vec::new(),
                outputs: Vec::new(),
                parked: Vec::new(),
            }
        }

        fn cfg() -> ProtocolConfig {
            ProtocolConfig {
                probe_interval_us: 1_000_000,
                rpc_timeout_us: 300_000,
                processing_delay_us: 1_000,
                bandwidth_window_us: 5_000_000,
                ..ProtocolConfig::default()
            }
        }

        fn add_seed(&mut self, raw_id: u128) -> usize {
            let idx = self.machines.len();
            let (m, outs) = NodeMachine::new_seed(
                Self::cfg(),
                NodeId(raw_id),
                Addr(idx as u64),
                Bytes::new(),
                1e9,
                idx as u64 + 1,
            );
            self.machines.push(m);
            self.dead.push(false);
            self.process(idx, outs);
            idx
        }

        fn add_joiner(&mut self, raw_id: u128, bootstrap: usize, threshold: f64) -> usize {
            let idx = self.machines.len();
            let boot = self.machines[bootstrap].as_target();
            let (m, outs) = NodeMachine::new_joining(
                Self::cfg(),
                NodeId(raw_id),
                Addr(idx as u64),
                Bytes::new(),
                threshold,
                boot,
                idx as u64 + 1,
            );
            self.machines.push(m);
            self.dead.push(false);
            self.process(idx, outs);
            idx
        }

        fn process(&mut self, from: usize, outs: Vec<Output>) {
            for o in outs {
                match o {
                    Output::Send { to, msg, delay_us } => {
                        // Resolve destination machine by address.
                        let dest = to.addr.0 as usize;
                        self.seq += 1;
                        let at = self.now + delay_us + self.latency_us;
                        let msg_idx = self.parked.len();
                        self.parked.push((
                            self.machines[from].id(),
                            self.machines[from].addr(),
                            msg,
                        ));
                        self.queue.push(std::cmp::Reverse((
                            at,
                            self.seq,
                            dest,
                            MiniInput::Msg { from, msg_idx },
                        )));
                    }
                    Output::SetTimer { delay_us, timer } => {
                        self.seq += 1;
                        let (d, tok) = encode_timer(timer);
                        self.queue.push(std::cmp::Reverse((
                            self.now + delay_us,
                            self.seq,
                            from,
                            MiniInput::Timer(d, tok),
                        )));
                    }
                    other => self.outputs.push((from, other)),
                }
            }
        }

        fn run_until(&mut self, t_us: u64) {
            while let Some(std::cmp::Reverse((at, _, dest, input))) = self.queue.peek().cloned() {
                if at > t_us {
                    break;
                }
                self.queue.pop();
                self.now = at;
                if self.dead[dest] {
                    continue;
                }
                let inp = match input {
                    MiniInput::Msg { msg_idx, .. } => {
                        let (from, from_addr, msg) = self.parked[msg_idx].clone();
                        Input::Message {
                            from,
                            from_addr,
                            msg,
                        }
                    }
                    MiniInput::Timer(d, tok) => Input::Timer(decode_timer(d, tok)),
                };
                let outs = self.machines[dest].handle(self.now, inp);
                self.process(dest, outs);
            }
            self.now = t_us;
        }

        fn send_command(&mut self, idx: usize, cmd: Command) {
            let outs = self.machines[idx].handle(self.now, Input::Command(cmd));
            self.process(idx, outs);
        }
    }

    fn encode_timer(t: Timer) -> (u8, u64) {
        match t {
            Timer::Probe => (0, 0),
            Timer::RpcTimeout(tok) => (1, tok),
            Timer::Adapt => (2, 0),
            Timer::Refresh => (3, 0),
            Timer::Expire => (4, 0),
            Timer::Reconcile => (5, 0),
        }
    }

    fn decode_timer(d: u8, tok: u64) -> Timer {
        match d {
            0 => Timer::Probe,
            1 => Timer::RpcTimeout(tok),
            2 => Timer::Adapt,
            3 => Timer::Refresh,
            5 => Timer::Reconcile,
            _ => Timer::Expire,
        }
    }

    #[test]
    fn seed_plus_joiners_reach_full_mutual_knowledge() {
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000); // "001…"
        let ids = [
            0x7000_0000_0000_0000_0000_0000_0000_0000u128, // 0111…
            0xB000_0000_0000_0000_0000_0000_0000_0000u128, // 1011…
            0xD000_0000_0000_0000_0000_0000_0000_0000u128, // 1101…
        ];
        let mut idxs = vec![a];
        for (k, &raw) in ids.iter().enumerate() {
            net.run_until((k as u64 + 1) * 2_000_000);
            idxs.push(net.add_joiner(raw, a, 1e9)); // huge budget → level 0
        }
        net.run_until(20_000_000);
        // Everyone active, level 0, and knows all 3 others.
        for &i in &idxs {
            let m = &net.machines[i];
            assert!(m.is_active(), "machine {i} not active");
            assert_eq!(m.level(), Level::TOP);
            assert_eq!(m.peers().len(), 3, "machine {i} has {}", m.peers().len());
        }
        // Joined outputs emitted.
        let joins = net
            .outputs
            .iter()
            .filter(|(_, o)| matches!(o, Output::Joined))
            .count();
        assert_eq!(joins, 3);
    }

    #[test]
    fn weak_joiner_settles_at_estimated_level_and_downloads_subset() {
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000);
        // Give the seed measurable cost: a couple of strong joiners first.
        let b = net.add_joiner(0xB000_0000_0000_0000_0000_0000_0000_0000, a, 1e9);
        net.run_until(5_000_000);
        // Weak node with a tiny budget: its estimate should be > 0 … but
        // with a fresh system the measured W_T may be ~0, so the estimate
        // degenerates to the top's level. We force a ratio by lowering the
        // threshold *after* joining and letting adaptation act — here we
        // simply verify the join completes and scope matches level.
        let c = net.add_joiner(0xE000_0000_0000_0000_0000_0000_0000_0000, b, 1e9);
        net.run_until(15_000_000);
        let m = &net.machines[c];
        assert!(m.is_active());
        assert_eq!(m.peers().scope(), m.eigenstring());
        // All peers in the list share the eigenstring.
        for p in m.peers().iter() {
            assert!(m.eigenstring().contains(p.id));
        }
    }

    #[test]
    fn silent_failure_is_detected_and_multicast() {
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000);
        let b = net.add_joiner(0x7000_0000_0000_0000_0000_0000_0000_0000, a, 1e9);
        let c = net.add_joiner(0xB000_0000_0000_0000_0000_0000_0000_0000, a, 1e9);
        net.run_until(10_000_000);
        assert_eq!(net.machines[a].peers().len(), 2);
        // Crash b silently.
        net.dead[b] = true;
        net.run_until(40_000_000);
        let dead_id = net.machines[b].id();
        assert!(
            !net.machines[a].peers().contains(dead_id),
            "a still lists the dead node"
        );
        assert!(
            !net.machines[c].peers().contains(dead_id),
            "c still lists the dead node"
        );
        let detections = net
            .outputs
            .iter()
            .filter(|(_, o)| matches!(o, Output::FailureDetected { .. }))
            .count();
        assert!(detections >= 1);
    }

    #[test]
    fn off_level_lonely_peer_crash_is_detected() {
        // The PR 7 depth-4 finding: a node alone in its eigenstring
        // group sits in nobody's §4.1 ring, so a silent crash there was
        // never detected (and with no lifetime samples at its level,
        // expiry never fired either). Cross-level fallback probing must
        // reach it anyway.
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000); // 001…
        let b = net.add_joiner(0xB000_0000_0000_0000_0000_0000_0000_0000, a, 1e9); // 1011…
        let c = net.add_joiner(0xD000_0000_0000_0000_0000_0000_0000_0000, a, 1e9); // 1101…
        net.run_until(10_000_000);
        // Shift the seed to level 1. Its group "0…" holds no other node,
        // so no ring successor anywhere points at it.
        net.send_command(a, Command::SetLevel(Level::new(1)));
        net.run_until(20_000_000);
        let a_id = net.machines[a].id();
        assert_eq!(net.machines[a].level(), Level::new(1));
        assert!(
            net.machines[b].peers().contains(a_id),
            "b lost the seed after its shift"
        );
        // Crash the now-lonely seed silently.
        net.dead[a] = true;
        net.run_until(60_000_000);
        for &i in &[b, c] {
            assert!(
                !net.machines[i].peers().contains(a_id),
                "machine {i} still holds the departed off-level pointer"
            );
        }
    }

    #[test]
    fn info_change_propagates_to_audience() {
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000);
        let b = net.add_joiner(0x7000_0000_0000_0000_0000_0000_0000_0000, a, 1e9);
        net.run_until(5_000_000);
        net.send_command(b, Command::ChangeInfo(Bytes::from_static(b"os:plan9")));
        net.run_until(10_000_000);
        let b_id = net.machines[b].id();
        let seen = net.machines[a].peers().get(b_id).unwrap();
        assert_eq!(&seen.info[..], b"os:plan9");
    }

    #[test]
    fn graceful_shutdown_announces_leave() {
        let mut net = MiniNet::new();
        let a = net.add_seed(0x2000_0000_0000_0000_0000_0000_0000_0000);
        let b = net.add_joiner(0x7000_0000_0000_0000_0000_0000_0000_0000, a, 1e9);
        net.run_until(5_000_000);
        let b_id = net.machines[b].id();
        assert!(net.machines[a].peers().contains(b_id));
        net.send_command(b, Command::Shutdown);
        net.run_until(8_000_000);
        assert!(!net.machines[a].peers().contains(b_id));
        // A left machine ignores further input.
        assert!(net.machines[b]
            .handle(net.now, Input::Timer(Timer::Probe))
            .is_empty());
    }

    #[test]
    fn bandwidth_meter_windows_correctly() {
        let mut m = BandwidthMeter::new(6_000_000); // 6 s window
        m.note(0, 6_000); // 6 kbit at t=0
        assert!((m.bps(1_000_000) - 1_000.0).abs() < 1.0); // 6 kbit / 6 s
                                                           // After the window passes, the sample expires.
        assert!(m.bps(13_000_000) < 1.0);
    }

    #[test]
    fn lifetime_stats_mean() {
        let mut lt = LifetimeStats::default();
        assert!(lt.mean_us(Level::TOP).is_none());
        lt.record(Level::TOP, 100);
        lt.record(Level::TOP, 300);
        assert_eq!(lt.mean_us(Level::TOP), Some(200));
        lt.record(Level::new(2), 500);
        assert_eq!(lt.mean_us(Level::new(2)), Some(500));
        // Levels without samples fall back to the overall mean.
        assert_eq!(lt.mean_us(Level::new(1)), Some(300));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_join_dissection_and_sends() {
        use peerwindow_trace::TraceEventKind as K;
        let mut net = MiniNet::new();
        let seed = net.add_seed(0x1111_u128 << 64);
        net.run_until(1_000_000);
        let joiner = net.add_joiner(0x9999_u128 << 64, seed, 1e9);
        for m in &mut net.machines {
            m.set_tracing(true);
        }
        net.run_until(10_000_000);
        assert!(net.machines[joiner].is_active());
        let mut log = Vec::new();
        for m in &mut net.machines {
            m.take_trace(&mut log);
        }
        let kinds: Vec<&str> = log.iter().map(|r| r.kind.name()).collect();
        // The joiner walked the §4.3 dissection (step 1 completed before
        // tracing was enabled in add_joiner's constructor, steps 2–4 are
        // recorded), probes fired, and message traffic was classified.
        assert!(kinds.contains(&"join_step"));
        assert!(kinds.contains(&"probe"));
        assert!(kinds.contains(&"msg_send"));
        assert!(kinds.contains(&"msg_recv"));
        let phases: Vec<JoinPhase> = log
            .iter()
            .filter_map(|r| match r.kind {
                K::JoinStep { phase } if r.node == net.machines[joiner].id().0 => Some(phase),
                _ => None,
            })
            .collect();
        assert_eq!(
            phases,
            vec![
                JoinPhase::LevelQuery,
                JoinPhase::Download,
                JoinPhase::Active
            ]
        );
        // The join multicast is causally keyed by the joiner's Join event.
        let join_cause = CauseId::new(net.machines[joiner].id().0, 1);
        assert!(log
            .iter()
            .any(|r| r.cause == join_cause && matches!(r.kind, K::MsgSend { .. })));
        // Untraced machines emit nothing once drained.
        let mut rest = Vec::new();
        net.machines[seed].set_tracing(false);
        net.run_until(12_000_000);
        net.machines[joiner].take_trace(&mut rest);
        assert!(!rest.is_empty());
    }

    #[test]
    fn backoff_waits_grow_cap_and_jitter_deterministically() {
        let mut net = MiniNet::new();
        let seed = net.add_seed(0x80);
        let m = &net.machines[seed];
        let base = m.cfg.rpc_timeout_us;
        let jitter = |wait: u64| (wait as f64 * m.cfg.rpc_backoff_jitter) as u64;
        for attempt in 1..=6u32 {
            let wait = m.backoff_wait_us(attempt);
            let nominal = ((base as f64 * m.cfg.rpc_backoff_mult.powi(attempt as i32 - 1)) as u64)
                .min(m.cfg.rpc_backoff_max_us);
            assert!(
                (nominal..=nominal + jitter(nominal)).contains(&wait),
                "attempt {attempt}: wait {wait} outside [{nominal}, +jitter]"
            );
            // Pure function of machine state: re-asking is identical.
            assert_eq!(wait, m.backoff_wait_us(attempt));
        }
        // The cap binds eventually (2^k · base exceeds it).
        assert!(
            m.backoff_wait_us(40) <= m.cfg.rpc_backoff_max_us + jitter(m.cfg.rpc_backoff_max_us)
        );
        // mult = 1 restores the paper's fixed-interval retry (no growth).
        let mut fixed = net.machines.remove(seed);
        fixed.cfg.rpc_backoff_mult = 1.0;
        fixed.cfg.rpc_backoff_jitter = 0.0;
        assert_eq!(fixed.backoff_wait_us(1), base);
        assert_eq!(fixed.backoff_wait_us(5), base);
    }
}
