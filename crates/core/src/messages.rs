//! Wire messages exchanged by PeerWindow nodes.
//!
//! The protocol is transport-agnostic; these are logical messages whose
//! sizes (for bandwidth accounting) follow the paper's constants: 1,000-bit
//! event messages, 500-bit probes, small acks, and bulk peer-list
//! downloads whose size is the sum of the carried pointers.

use crate::config::ProtocolConfig;
use crate::event::StateEvent;
use crate::id::{NodeId, Prefix};
use crate::level::Level;
use crate::multicast::Target;
use crate::pointer::Pointer;
use serde::{Deserialize, Serialize};

/// A logical protocol message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Heartbeat to the ring successor (§4.1).
    Probe,
    /// Heartbeat response.
    ProbeAck,
    /// A state-changing event reported to a top node (§2, §4.1).
    Report {
        /// The event being reported.
        event: StateEvent,
    },
    /// Report response; piggybacks `t − 1` top-node pointers (§4.5).
    ReportAck {
        /// Deduplication key of the acknowledged event.
        key: (NodeId, u64),
        /// Fresh top-node pointers for the reporter's top list.
        tops: Vec<Target>,
    },
    /// Tree-multicast hop (§4.2).
    Multicast {
        /// The disseminated event.
        event: StateEvent,
        /// Range length the receiver becomes responsible for.
        step: u8,
    },
    /// Multicast acknowledgement ("acknowledgement is required for all the
    /// multicast messages", §4.2).
    MulticastAck {
        /// Deduplication key of the acknowledged event.
        key: (NodeId, u64),
    },
    /// Join step 1: ask a bootstrap node for top nodes of our part (§4.3,
    /// §4.4 for the cross-part case).
    FindTop {
        /// The joining node's id (used to locate its part).
        joiner: NodeId,
    },
    /// Reply with top nodes of the joiner's part.
    FindTopReply {
        /// Top-node pointers (possibly of another part's top list when
        /// forwarded cross-part).
        tops: Vec<Target>,
    },
    /// Join step 2: ask a top node for its level and measured cost.
    LevelQuery,
    /// Level-estimation data: "the top node tells the new node its own
    /// level l_T as well as its current bandwidth cost W_T" (§4.3).
    LevelQueryReply {
        /// Responder's level.
        level: Level,
        /// Responder's dynamically measured maintenance cost, bps.
        cost_bps: f64,
    },
    /// Join step 3 / level raise: download all pointers within `scope`
    /// from a stronger node.
    Download {
        /// Requested eigenstring scope.
        scope: Prefix,
    },
    /// Bulk reply carrying the requested pointers and a fresh top list.
    DownloadReply {
        /// Scope that was requested (echoed for matching).
        scope: Prefix,
        /// All pointers within the scope.
        pointers: Vec<Pointer>,
        /// Responder's top list (join step 3 also downloads it).
        tops: Vec<Target>,
    },
    /// Ask any peer for its top-node list (last-resort fallback, §4.5).
    TopListRequest,
    /// Top-list reply.
    TopListReply {
        /// Responder's top-node entries.
        tops: Vec<Target>,
    },
}

impl Message {
    /// Approximate wire size in bits under `cfg`, for bandwidth accounting.
    pub fn wire_bits(&self, cfg: &ProtocolConfig) -> u64 {
        const TARGET_BITS: u64 = 128 + 48 + 8;
        match self {
            Message::Probe | Message::ProbeAck => cfg.probe_msg_bits,
            Message::Report { event } | Message::Multicast { event, .. } => {
                cfg.event_msg_bits + event.info.len() as u64 * 8
            }
            Message::ReportAck { tops, .. } => cfg.ack_msg_bits + tops.len() as u64 * TARGET_BITS,
            Message::MulticastAck { .. } => cfg.ack_msg_bits,
            Message::FindTop { .. } | Message::LevelQuery | Message::TopListRequest => {
                cfg.ack_msg_bits
            }
            Message::FindTopReply { tops } | Message::TopListReply { tops } => {
                cfg.ack_msg_bits + tops.len() as u64 * TARGET_BITS
            }
            Message::LevelQueryReply { .. } => cfg.ack_msg_bits + 64,
            Message::Download { .. } => cfg.ack_msg_bits + 128,
            Message::DownloadReply { pointers, tops, .. } => {
                cfg.ack_msg_bits
                    + pointers.iter().map(Pointer::wire_bits).sum::<u64>()
                    + tops.len() as u64 * TARGET_BITS
            }
        }
    }

    /// The message's trace class, for bandwidth accounting by class.
    #[cfg(feature = "trace")]
    pub fn trace_class(&self) -> peerwindow_trace::MsgClass {
        use peerwindow_trace::MsgClass;
        match self {
            Message::Probe => MsgClass::Probe,
            Message::ProbeAck => MsgClass::ProbeAck,
            Message::Report { .. } => MsgClass::Report,
            Message::ReportAck { .. } => MsgClass::ReportAck,
            Message::Multicast { .. } => MsgClass::Multicast,
            Message::MulticastAck { .. } => MsgClass::MulticastAck,
            Message::FindTop { .. } => MsgClass::FindTop,
            Message::FindTopReply { .. } => MsgClass::FindTopReply,
            Message::LevelQuery => MsgClass::LevelQuery,
            Message::LevelQueryReply { .. } => MsgClass::LevelQueryReply,
            Message::Download { .. } => MsgClass::Download,
            Message::DownloadReply { .. } => MsgClass::DownloadReply,
            Message::TopListRequest => MsgClass::TopListRequest,
            Message::TopListReply { .. } => MsgClass::TopListReply,
        }
    }

    /// Whether this message expects an acknowledgement / reply.
    pub fn expects_reply(&self) -> bool {
        matches!(
            self,
            Message::Probe
                | Message::Report { .. }
                | Message::Multicast { .. }
                | Message::FindTop { .. }
                | Message::LevelQuery
                | Message::Download { .. }
                | Message::TopListRequest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::pointer::Addr;
    use bytes::Bytes;

    fn event(info: &'static [u8]) -> StateEvent {
        StateEvent {
            subject: NodeId(1),
            addr: Addr(1),
            level: Level::new(1),
            kind: EventKind::Join,
            seq: 0,
            origin_us: 0,
            info: Bytes::from_static(info),
        }
    }

    #[test]
    fn event_messages_use_paper_size() {
        let cfg = ProtocolConfig::default();
        let m = Message::Multicast {
            event: event(b""),
            step: 3,
        };
        assert_eq!(m.wire_bits(&cfg), 1_000);
        let m = Message::Multicast {
            event: event(b"xy"),
            step: 3,
        };
        assert_eq!(m.wire_bits(&cfg), 1_016);
    }

    #[test]
    fn download_reply_scales_with_pointers() {
        let cfg = ProtocolConfig::default();
        let pointers = vec![Pointer::new(NodeId(1), Addr(0), Level::TOP); 10];
        let m = Message::DownloadReply {
            scope: Prefix::EMPTY,
            pointers,
            tops: vec![],
        };
        assert_eq!(m.wire_bits(&cfg), cfg.ack_msg_bits + 10 * 184);
    }

    #[test]
    fn reply_expectations() {
        let cfg = ProtocolConfig::default();
        assert!(Message::Probe.expects_reply());
        assert!(!Message::ProbeAck.expects_reply());
        assert!(Message::Multicast {
            event: event(b""),
            step: 0
        }
        .expects_reply());
        assert!(!Message::MulticastAck {
            key: (NodeId(1), 0)
        }
        .expects_reply());
        // probes are cheaper than events
        assert!(
            Message::Probe.wire_bits(&cfg) < Message::Report { event: event(b"") }.wire_bits(&cfg)
        );
    }
}
