//! Split PeerWindow parts (§4.4).
//!
//! When no node can afford level 0, the system splits into independent
//! parts: one per minimal eigenstring present. A node's part is identified
//! by the shortest live eigenstring that prefixes its id; the nodes whose
//! eigenstring *equals* that prefix are the part's top nodes. Parts are
//! wholly independent — a node in one part keeps no pointer to any node of
//! another part — and each part is a complete PeerWindow.

use crate::id::{NodeId, Prefix};
use crate::level::NodeIdentity;
use std::collections::BTreeSet;

/// The set of part prefixes of a membership: the minimal (under the
/// prefix-of order) eigenstrings present.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartMap {
    /// Minimal eigenstrings, sorted. Pairwise prefix-free.
    parts: Vec<Prefix>,
}

impl PartMap {
    /// Computes the parts of a membership from its eigenstrings.
    pub fn from_eigenstrings(eigenstrings: impl IntoIterator<Item = Prefix>) -> Self {
        // Sort by (bits, len); a prefix sorts before everything it covers,
        // so a linear scan keeping non-covered entries finds the minimal set.
        let all: BTreeSet<(u128, u8)> = eigenstrings
            .into_iter()
            .map(|p| (p.bits(), p.len()))
            .collect();
        let mut parts: Vec<Prefix> = Vec::new();
        for (bits, len) in all {
            let p = Prefix::new(bits, len);
            if !parts.last().is_some_and(|last| last.is_prefix_of(p)) {
                // Not covered by the most recent minimal prefix. Because the
                // set is sorted, any covering prefix would be the latest
                // minimal one, so `p` is itself minimal.
                parts.push(p);
            }
        }
        PartMap { parts }
    }

    /// Computes the parts of a membership from node identities.
    pub fn from_members<'a>(members: impl IntoIterator<Item = &'a NodeIdentity>) -> Self {
        Self::from_eigenstrings(members.into_iter().map(|m| m.eigenstring()))
    }

    /// The part prefixes, sorted and pairwise prefix-free.
    #[inline]
    pub fn parts(&self) -> &[Prefix] {
        &self.parts
    }

    /// Number of parts. 1 means the system is whole (one connected
    /// PeerWindow); 0 means the system is empty.
    #[inline]
    pub fn count(&self) -> usize {
        self.parts.len()
    }

    /// Whether the system is split (more than one part).
    #[inline]
    pub fn is_split(&self) -> bool {
        self.parts.len() > 1
    }

    /// The part containing id `id`, if any (every live node's id is in
    /// some part; an arbitrary id may fall outside all parts).
    pub fn part_of(&self, id: NodeId) -> Option<Prefix> {
        // Parts are sorted by bits; binary search for the candidate whose
        // range could contain `id`, then verify.
        let idx = self
            .parts
            .partition_point(|p| p.range_start().raw() <= id.raw());
        idx.checked_sub(1)
            .map(|i| self.parts[i])
            .filter(|p| p.contains(id))
    }

    /// Whether two ids belong to the same part.
    pub fn same_part(&self, a: NodeId, b: NodeId) -> bool {
        match (self.part_of(a), self.part_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Whether `n` is a top node of its part (its eigenstring equals the
    /// part prefix).
    pub fn is_top(&self, n: NodeIdentity) -> bool {
        self.part_of(n.id) == Some(n.eigenstring())
    }
}

/// Partition-aware settle check: what a membership's pointer sets look
/// like relative to its part structure. After a network partition heals
/// (or a §4.4 split resolves), a settled system has `missing == 0` —
/// every node again knows its full same-part, in-scope audience — and
/// `cross_part == stale == 0` — no pointer crosses a part boundary or
/// names a departed node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartAudit {
    /// Number of parts in the membership (1 = whole).
    pub parts: usize,
    /// Required pointers: (holder, subject) pairs with both in the same
    /// part and the subject inside the holder's eigenstring scope.
    pub required: usize,
    /// Required pointers the holder does not have.
    pub missing: usize,
    /// Held pointers whose subject is a live member of a *different*
    /// part (§4.4: parts are wholly independent, so any such pointer is
    /// a protocol violation once the split has settled).
    pub cross_part: usize,
    /// Held pointers whose subject is not in the membership at all
    /// (dead or departed nodes awaiting obituary/expiry).
    pub stale: usize,
}

impl PartAudit {
    /// Whether the membership has fully settled: complete same-part
    /// knowledge and no cross-part or stale pointers.
    pub fn is_settled(&self) -> bool {
        self.missing == 0 && self.cross_part == 0 && self.stale == 0
    }
}

/// Audits each member's held pointer set against the part structure of
/// the membership. `views` pairs every live member's identity with the
/// node ids it currently holds pointers to (peer list only, excluding
/// itself).
pub fn audit_parts(views: &[(NodeIdentity, Vec<NodeId>)]) -> PartAudit {
    let pm = PartMap::from_members(views.iter().map(|(ident, _)| ident));
    let by_id: std::collections::BTreeMap<NodeId, NodeIdentity> =
        views.iter().map(|(ident, _)| (ident.id, *ident)).collect();
    let mut audit = PartAudit {
        parts: pm.count(),
        ..PartAudit::default()
    };
    for (holder, held) in views {
        let scope = holder.eigenstring();
        let held: BTreeSet<NodeId> = held.iter().copied().collect();
        for subject in by_id.keys() {
            if *subject != holder.id
                && scope.contains(*subject)
                && pm.same_part(holder.id, *subject)
            {
                audit.required += 1;
                if !held.contains(subject) {
                    audit.missing += 1;
                }
            }
        }
        for ptr in &held {
            if !by_id.contains_key(ptr) {
                audit.stale += 1;
            } else if !pm.same_part(holder.id, *ptr) {
                audit.cross_part += 1;
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;

    fn ident(bits: &str, level: u8) -> NodeIdentity {
        NodeIdentity::new(
            Prefix::from_bits_str(bits).unwrap().range_start(),
            Level::new(level),
        )
    }

    #[test]
    fn whole_system_is_one_part() {
        let members = [ident("0010", 0), ident("1011", 1), ident("0100", 2)];
        let pm = PartMap::from_members(&members);
        assert_eq!(pm.count(), 1);
        assert!(!pm.is_split());
        assert_eq!(pm.parts()[0], Prefix::EMPTY);
        assert!(pm.is_top(members[0]));
        assert!(!pm.is_top(members[1]));
    }

    #[test]
    fn paper_split_example() {
        // §2: removing the level-0 nodes A and B from figure 1 splits the
        // system into {C, F, G, I} (ids 0…) and {D, E, H, J} (ids 1…).
        let members = [
            ident("0100", 2), // C
            ident("1101", 1), // D
            ident("1011", 1), // E
            ident("0110", 2), // F
            ident("0000", 2), // G
            ident("1010", 2), // H
            ident("0011", 2), // I
            ident("1000", 2), // J
        ];
        let pm = PartMap::from_members(&members);
        assert!(pm.is_split());
        // Minimal eigenstrings: "1" (D, E) covers H and J; on the 0-side the
        // level-2 eigenstrings "00" and "01" are minimal.
        assert_eq!(
            pm.parts(),
            &[
                Prefix::from_bits_str("00").unwrap(),
                Prefix::from_bits_str("01").unwrap(),
                Prefix::from_bits_str("1").unwrap(),
            ]
        );
        // Part membership.
        assert!(pm.same_part(members[1].id, members[5].id)); // D, H
        assert!(!pm.same_part(members[0].id, members[1].id)); // C, D
                                                              // Top nodes: D and E are tops of part "1"; H is not.
        assert!(pm.is_top(members[1]));
        assert!(pm.is_top(members[2]));
        assert!(!pm.is_top(members[5]));
    }

    #[test]
    fn nested_eigenstrings_collapse_to_minimal() {
        let pm = PartMap::from_eigenstrings([
            Prefix::from_bits_str("10").unwrap(),
            Prefix::from_bits_str("101").unwrap(),
            Prefix::from_bits_str("1011").unwrap(),
        ]);
        assert_eq!(pm.count(), 1);
        assert_eq!(pm.parts()[0], Prefix::from_bits_str("10").unwrap());
    }

    #[test]
    fn part_of_outside_any_part_is_none() {
        let pm = PartMap::from_eigenstrings([Prefix::from_bits_str("11").unwrap()]);
        assert_eq!(
            pm.part_of(Prefix::from_bits_str("00").unwrap().range_start()),
            None
        );
        let in_part = Prefix::from_bits_str("1101").unwrap().range_start();
        assert_eq!(
            pm.part_of(in_part),
            Some(Prefix::from_bits_str("11").unwrap())
        );
    }

    #[test]
    fn empty_membership_has_no_parts() {
        let pm = PartMap::from_eigenstrings(std::iter::empty());
        assert_eq!(pm.count(), 0);
        assert_eq!(pm.part_of(NodeId(0)), None);
    }

    #[test]
    fn audit_flags_missing_cross_part_and_stale() {
        // A §2-style split: {C, F} form part "01", {D, E, H} part "1".
        let c = ident("0100", 2);
        let d = ident("1101", 1);
        let e = ident("1011", 1);
        let f = ident("0110", 2);
        let h = ident("1010", 2);
        let ghost = ident("1111", 2).id; // not a member

        // Fully settled views for part "1" (scope of level-1 D is "1",
        // which covers E and H; E likewise; level-2 H's scope "10"
        // covers E only).
        let settled = vec![
            (c, vec![f.id]),
            (f, vec![c.id]),
            (d, vec![e.id, h.id]),
            (e, vec![d.id, h.id]),
            (h, vec![e.id]),
        ];
        let a = audit_parts(&settled);
        assert_eq!(a.parts, 2);
        assert!(a.is_settled(), "{a:?}");
        // C↔F, D↔E, D→H, E→H, H→E (H's level-2 scope "10" excludes D).
        assert_eq!(a.required, 7);

        // Break it three ways: D forgets H (missing), holds C from
        // another part (cross_part), and keeps a departed node (stale).
        let broken = vec![
            (c, vec![f.id]),
            (f, vec![c.id]),
            (d, vec![e.id, c.id, ghost]),
            (e, vec![d.id, h.id]),
            (h, vec![e.id]),
        ];
        let a = audit_parts(&broken);
        assert!(!a.is_settled());
        assert_eq!(a.missing, 1);
        assert_eq!(a.cross_part, 1);
        assert_eq!(a.stale, 1);
    }
}
