//! Node levels and eigenstrings.
//!
//! Every PeerWindow node carries a self-determined attribute *level*
//! (§2): an `l`-level node keeps pointers to all nodes whose nodeId shares
//! its first `l` bits — about `N / 2^l` pointers in an `N`-node system.
//! Level 0 is the *highest* level (the paper: "higher level means smaller
//! level value"); level-0 nodes are *top nodes* and see the entire system
//! (or their entire part, in a split system, §4.4).

use crate::id::{NodeId, Prefix, ID_BITS};
use core::fmt;
use serde::{Deserialize, Serialize};

/// A node's level. Smaller value = higher level = larger peer list.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Level(pub u8);

impl Level {
    /// The top level (level 0): peer list covers the whole part.
    pub const TOP: Level = Level(0);

    /// Maximum representable level. Beyond ~40 the peer list of any
    /// realistic system is empty, but we allow the full id width.
    pub const MAX: Level = Level(ID_BITS);

    /// Creates a level, clamping to [`Level::MAX`].
    #[inline]
    pub fn new(l: u8) -> Self {
        Level(l.min(ID_BITS))
    }

    /// Raw numeric value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the top level.
    #[inline]
    pub const fn is_top(self) -> bool {
        self.0 == 0
    }

    /// One level *higher* (towards 0, i.e. a larger peer list). Saturates
    /// at the top.
    #[inline]
    pub fn raised(self) -> Level {
        Level(self.0.saturating_sub(1))
    }

    /// One level *lower* (away from 0, i.e. a smaller peer list).
    /// Saturates at [`Level::MAX`].
    #[inline]
    pub fn lowered(self) -> Level {
        Level::new(self.0.saturating_add(1))
    }

    /// Whether `self` is stronger than (or equal to) `other`: a stronger
    /// node's peer list covers a weaker node's (§2 property 2), which for
    /// nodes on the same id requires a smaller level value.
    #[inline]
    pub fn at_least_as_strong_as(self, other: Level) -> bool {
        self.0 <= other.0
    }

    /// The eigenstring of a node with identifier `id` at this level: its
    /// first `level` bits (underlined in the paper's figure 1).
    #[inline]
    pub fn eigenstring(self, id: NodeId) -> Prefix {
        id.prefix(self.0)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u8> for Level {
    fn from(l: u8) -> Self {
        Level::new(l)
    }
}

/// A node's identity as far as list membership is concerned: its id plus
/// its level, from which the eigenstring is derived.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct NodeIdentity {
    /// The node's 128-bit identifier.
    pub id: NodeId,
    /// The node's self-determined level.
    pub level: Level,
}

impl NodeIdentity {
    /// Creates an identity.
    #[inline]
    pub fn new(id: NodeId, level: Level) -> Self {
        NodeIdentity { id, level }
    }

    /// The node's eigenstring: the first `level` bits of its id.
    #[inline]
    pub fn eigenstring(self) -> Prefix {
        self.level.eigenstring(self.id)
    }

    /// Whether this node must keep a pointer to a node with id `other`
    /// (§2: an `l`-level node's peer list contains all nodes sharing its
    /// first `l` bits). Equivalently, whether this node is in `other`'s
    /// audience set.
    #[inline]
    pub fn covers(self, other: NodeId) -> bool {
        self.eigenstring().contains(other)
    }

    /// Whether `self` is *stronger* than `other`: `self`'s eigenstring is a
    /// proper prefix of `other`'s, so `self`'s peer list strictly covers
    /// `other`'s (§2 property 2).
    #[inline]
    pub fn stronger_than(self, other: NodeIdentity) -> bool {
        let a = self.eigenstring();
        let b = other.eigenstring();
        a.len() < b.len() && a.is_prefix_of(b)
    }

    /// Whether the two nodes have identical eigenstrings — and therefore,
    /// by §2 property 1, identical (correct) peer lists.
    #[inline]
    pub fn same_group(self, other: NodeIdentity) -> bool {
        self.eigenstring() == other.eigenstring()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(bits: &str, level: u8) -> NodeIdentity {
        let id = Prefix::from_bits_str(bits).unwrap().range_start();
        NodeIdentity::new(id, Level::new(level))
    }

    #[test]
    fn raise_lower_saturate() {
        assert_eq!(Level::TOP.raised(), Level::TOP);
        assert_eq!(Level::new(3).raised(), Level::new(2));
        assert_eq!(Level::new(3).lowered(), Level::new(4));
        assert_eq!(Level::MAX.lowered(), Level::MAX);
    }

    #[test]
    fn eigenstring_is_level_prefix() {
        let n = ident("1011", 2);
        assert_eq!(n.eigenstring(), Prefix::from_bits_str("10").unwrap());
        assert_eq!(ident("1011", 0).eigenstring(), Prefix::EMPTY);
    }

    #[test]
    fn paper_figure1_relations() {
        // Figure 1: node E = 1011 at level 1, node H = 1010 at level 2,
        // node A at level 0, node C = 0100 at level 2.
        let a = ident("0010", 0);
        let c = ident("0100", 2);
        let e = ident("1011", 1);
        let h = ident("1010", 2);
        // E's eigenstring "1" is a prefix of H's "10": E stronger than H.
        assert!(e.stronger_than(h));
        assert!(!h.stronger_than(e));
        // A (level 0) is stronger than everyone else.
        assert!(a.stronger_than(c));
        assert!(a.stronger_than(e));
        assert!(a.stronger_than(h));
        // C ("01") and E ("1"): neither is prefix of the other.
        assert!(!c.stronger_than(e));
        assert!(!e.stronger_than(c));
    }

    #[test]
    fn covers_matches_eigenstring_containment() {
        let e = ident("1011", 1); // eigenstring "1"
        assert!(e.covers(Prefix::from_bits_str("11").unwrap().range_start()));
        assert!(!e.covers(Prefix::from_bits_str("01").unwrap().range_start()));
        // A top node covers everything.
        assert!(ident("0000", 0).covers(NodeId::MAX));
    }

    #[test]
    fn same_group_requires_same_level_and_prefix() {
        // Figure 1: D (1101, level 1) and E (1011, level 1) share "1".
        let d = ident("1101", 1);
        let e = ident("1011", 1);
        assert!(d.same_group(e));
        let h = ident("1010", 2);
        assert!(!d.same_group(h));
    }
}
