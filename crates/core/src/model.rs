//! The paper's analytic performance model (§2 and §5.1).
//!
//! These closed forms are used by the joining process (level estimation),
//! by the autonomic level controller, and by the experiment harness to
//! cross-check simulation results against the paper's claims:
//!
//! * a node receives `m · r / L` messages per second per maintained
//!   pointer, so with budget `W` bps and message size `i` bits it can
//!   collect `p = W · L / (m · r · i)` pointers;
//! * the peer-list error rate is approximately
//!   `multicast_delay / lifetime`.

use crate::level::Level;

/// Parameters of the analytic model.
///
/// ```
/// use peerwindow_core::model::ModelParams;
/// // §2's example: 5 kbps of budget buys about 6,000 pointers.
/// let m = ModelParams::default();
/// assert_eq!(m.pointers_for_budget(5_000.0).round() as u64, 6_000);
/// // …and 1,000 pointers cost well under 1 kbps to maintain.
/// assert!(m.cost_bps(1_000.0) < 1_000.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Average node lifetime `L`, seconds (§2 example: 3600).
    pub lifetime_s: f64,
    /// State changes per lifetime `m`, including join and leave (§2: 3).
    pub changes_per_lifetime: f64,
    /// Multicast redundancy `r` (tree multicast: 1).
    pub redundancy: f64,
    /// Average event message size `i`, bits (§2: 1000).
    pub msg_bits: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            lifetime_s: 3600.0,
            changes_per_lifetime: 3.0,
            redundancy: 1.0,
            msg_bits: 1000.0,
        }
    }
}

impl ModelParams {
    /// Maintenance cost in bps for a peer list of `pointers` entries:
    /// `pointers · m · r · i / L`.
    pub fn cost_bps(&self, pointers: f64) -> f64 {
        pointers * self.changes_per_lifetime * self.redundancy * self.msg_bits / self.lifetime_s
    }

    /// Collectable pointers under a bandwidth budget `w_bps`:
    /// `p = W · L / (m · r · i)` (§2).
    pub fn pointers_for_budget(&self, w_bps: f64) -> f64 {
        w_bps * self.lifetime_s / (self.changes_per_lifetime * self.redundancy * self.msg_bits)
    }

    /// Input bandwidth (bps) of a level-`l` node in an `n`-node system:
    /// its list holds ≈ `n / 2^l` pointers.
    pub fn level_cost_bps(&self, n: f64, level: Level) -> f64 {
        self.cost_bps(n / 2f64.powi(level.value() as i32))
    }

    /// The stable level for a node with budget `w_bps` in an `n`-node
    /// system: the *highest* level (smallest value) whose cost fits the
    /// budget. Returns [`Level::TOP`] when even the full system fits.
    pub fn stable_level(&self, n: f64, w_bps: f64) -> Level {
        let full_cost = self.cost_bps(n);
        if full_cost <= w_bps || w_bps <= 0.0 && full_cost == 0.0 {
            return Level::TOP;
        }
        if w_bps <= 0.0 {
            return Level::MAX;
        }
        // cost(l) = full_cost / 2^l  ≤ w  ⇔  l ≥ log2(full_cost / w)
        let l = (full_cost / w_bps).log2().ceil();
        Level::new(l.clamp(0.0, 128.0) as u8)
    }

    /// §4.3 join-time estimate: `l_X = ceil(l_T + log2(W_T / W_X))` where
    /// the bootstrap top node reports its own level `l_T` and measured
    /// cost `w_t_bps`, and the joiner's budget is `w_x_bps`.
    pub fn estimate_join_level(l_t: Level, w_t_bps: f64, w_x_bps: f64) -> Level {
        if w_x_bps <= 0.0 {
            return Level::MAX;
        }
        if w_t_bps <= 0.0 {
            return l_t;
        }
        let l = l_t.value() as f64 + (w_t_bps / w_x_bps).log2();
        Level::new(l.ceil().clamp(0.0, 128.0) as u8)
    }

    /// Expected peer-list error rate given an average end-to-end multicast
    /// delay (§5.1: `error_rate ≈ multicast_delay / lifetime`).
    pub fn error_rate(&self, multicast_delay_s: f64) -> f64 {
        multicast_delay_s / self.lifetime_s
    }

    /// Expected end-to-end multicast delay for an `n`-node audience:
    /// ≈ `log2 n` steps of (`hop_latency + processing`) each (§5.1 uses
    /// 0.5 s average latency + 1 s processing over 16.6 steps → 24.9 s).
    pub fn multicast_delay_s(&self, n: f64, hop_latency_s: f64, processing_s: f64) -> f64 {
        n.max(2.0).log2() * (hop_latency_s + processing_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_efficiency_example() {
        // §2: L = 3600 s, m = 3, i = 1000, r = 1; a 5 kbps budget collects
        // about 6000 pointers.
        let m = ModelParams::default();
        let p = m.pointers_for_budget(5_000.0);
        assert!((p - 6_000.0).abs() < 1e-9, "p = {p}");
        // Inverse: maintaining 1000 pointers costs well under 1 kbps.
        assert!(m.cost_bps(1_000.0) < 1_000.0);
        assert!((m.cost_bps(1_000.0) - 833.3).abs() < 1.0);
    }

    #[test]
    fn paper_autonomy_example() {
        // §2: when lifetime doubles, the same 5 kbps budget supports a
        // doubled peer list (~12000 pointers).
        let mut m = ModelParams::default();
        m.lifetime_s *= 2.0;
        assert!((m.pointers_for_budget(5_000.0) - 12_000.0).abs() < 1e-9);
    }

    #[test]
    fn stable_level_monotone_in_budget() {
        let m = ModelParams::default();
        let n = 100_000.0;
        let mut last = Level::MAX;
        for w in [100.0, 500.0, 1_000.0, 5_000.0, 50_000.0, 1_000_000.0] {
            let l = m.stable_level(n, w);
            assert!(
                l.at_least_as_strong_as(last) || l == last,
                "level must rise with budget"
            );
            // Cost at the chosen level fits the budget…
            assert!(m.level_cost_bps(n, l) <= w + 1e-9);
            // …and the next higher level would not (unless already top).
            if !l.is_top() {
                assert!(m.level_cost_bps(n, l.raised()) > w);
            }
            last = l;
        }
        // Huge budget ⇒ top level.
        assert_eq!(m.stable_level(n, 1e9), Level::TOP);
    }

    #[test]
    fn join_estimate_matches_formula() {
        // Top node at level 0 spending 40 kbps; joiner with 10 kbps budget:
        // ceil(0 + log2(4)) = 2.
        assert_eq!(
            ModelParams::estimate_join_level(Level::TOP, 40_000.0, 10_000.0),
            Level::new(2)
        );
        // Joiner richer than the top node stays at the top node's level
        // (log2 < 0 rounds up to 0 relative to l_T).
        assert_eq!(
            ModelParams::estimate_join_level(Level::TOP, 40_000.0, 80_000.0),
            Level::TOP
        );
        // Non-power-of-two ratio rounds up (safer, smaller list).
        assert_eq!(
            ModelParams::estimate_join_level(Level::new(1), 30_000.0, 10_000.0),
            Level::new(3) // 1 + log2(3) = 2.58 → 3
        );
    }

    #[test]
    fn error_rate_matches_paper_back_of_envelope() {
        // §5.1: 16.6 steps × 1.5 s ≈ 24.9 s staleness; lifetime 135 min
        // ⇒ error ≈ 0.0031.
        let m = ModelParams {
            lifetime_s: 135.0 * 60.0,
            ..ModelParams::default()
        };
        let delay = m.multicast_delay_s(100_000.0, 0.5, 1.0);
        assert!((delay - 24.9).abs() < 0.05, "delay = {delay}");
        let err = m.error_rate(delay);
        assert!(err < 0.0035 && err > 0.0025, "err = {err}");
    }
}
