//! Chrome `trace_event` export (`chrome://tracing` / Perfetto).
//!
//! Each record becomes a complete event (`ph:"X"`) of 1µs nominal
//! duration: `ts` is the simulation time, `pid` is always 0, and each
//! node gets its own `tid` (assigned in first-appearance order) so the
//! viewer shows one lane per node. Thread-name metadata events label the
//! lanes with the node's hex id. The full JSONL field set rides along in
//! `args`, which makes the export lossless: [`parse`] rebuilds the exact
//! records from a document written by [`export`].

use crate::json::{self, JVal};
use crate::jsonl::{record_from_obj, Flat};
use crate::record::TraceRecord;
use crate::ParseError;

/// Renders records as one Chrome `trace_event` JSON document.
pub fn export(records: &[TraceRecord]) -> String {
    // Assign tids per node, in first-appearance order, so the export is a
    // pure function of the record sequence.
    let mut nodes: Vec<u128> = Vec::new();
    let tid = |node: u128, nodes: &mut Vec<u128>| -> usize {
        match nodes.iter().position(|&n| n == node) {
            Some(i) => i,
            None => {
                nodes.push(node);
                nodes.len() - 1
            }
        }
    };
    for r in records {
        tid(r.node, &mut nodes);
    }

    let mut out = String::with_capacity(records.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (i, node) in nodes.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"node {node:032x}\"}}}}"
        ));
    }
    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let t = tid(r.node, &mut nodes);
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":0,\"tid\":{t},\"args\":{{",
            r.kind.name(),
            r.at_us
        ));
        for (j, (k, v)) in crate::jsonl::flat_fields(r).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            match v {
                Flat::N(n) => out.push_str(&n.to_string()),
                Flat::S(s) => json::write_str(&mut out, s),
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Rebuilds records from a document written by [`export`]. Metadata
/// events are skipped; every `ph:"X"` event must carry the full flat
/// field set in `args`.
pub fn parse(doc: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let root = json::parse(doc)?;
    let events = match root.get("traceEvents") {
        Some(JVal::Arr(items)) => items,
        _ => return Err(ParseError::new("missing traceEvents array")),
    };
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JVal::as_str)
            .ok_or_else(|| ParseError::new(format!("event {i}: missing ph")))?;
        if ph != "X" {
            continue;
        }
        let args = ev
            .get("args")
            .ok_or_else(|| ParseError::new(format!("event {i}: missing args")))?;
        out.push(
            record_from_obj(args)
                .map_err(|e| ParseError::new(format!("event {i}: {}", e.message)))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::tests::one_of_each;

    #[test]
    fn export_round_trips_every_kind() {
        let records = one_of_each();
        let doc = export(&records);
        let back = parse(&doc).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn lanes_are_labelled_per_node() {
        let mut records = one_of_each();
        records[1].node = 0x5; // second node → second lane
        let doc = export(&records);
        assert!(doc.contains("\"name\":\"thread_name\""));
        assert!(doc.contains("node 00000000000000000000000000000005"));
        assert!(doc.contains("\"tid\":1"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Metadata-only documents parse to an empty record list.
        let doc = "{\"traceEvents\":[{\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                   \"name\":\"thread_name\",\"args\":{\"name\":\"n\"}}]}";
        assert_eq!(parse(doc).unwrap(), vec![]);
    }
}
