//! Typed trace records and their taxonomy.

/// Causality id: the `(subject, seq)` dedup key of the `StateEvent` that
/// caused a record, or [`CauseId::NONE`] for spontaneous actions (probes,
/// join steps). All records sharing a cause belong to one logical flow —
/// e.g. every hop of one multicast — which is what lets the query layer
/// reassemble trees after the fact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct CauseId {
    /// Raw id of the changing node (`NodeId::raw()`).
    pub subject: u128,
    /// The event's per-subject sequence number.
    pub seq: u64,
}

impl CauseId {
    /// "No cause": spontaneous protocol actions.
    pub const NONE: CauseId = CauseId { subject: 0, seq: 0 };

    /// Builds a cause from an event key.
    pub fn new(subject: u128, seq: u64) -> Self {
        CauseId { subject, seq }
    }

    /// Whether this is the [`CauseId::NONE`] sentinel.
    pub fn is_none(&self) -> bool {
        *self == CauseId::NONE
    }
}

/// Wire-message class, mirroring `peerwindow_core::Message` variants.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum MsgClass {
    Probe,
    ProbeAck,
    Report,
    ReportAck,
    Multicast,
    MulticastAck,
    FindTop,
    FindTopReply,
    LevelQuery,
    LevelQueryReply,
    Download,
    DownloadReply,
    TopListRequest,
    TopListReply,
}

impl MsgClass {
    /// Every class, in declaration order (bandwidth-table row order).
    pub const ALL: [MsgClass; 14] = [
        MsgClass::Probe,
        MsgClass::ProbeAck,
        MsgClass::Report,
        MsgClass::ReportAck,
        MsgClass::Multicast,
        MsgClass::MulticastAck,
        MsgClass::FindTop,
        MsgClass::FindTopReply,
        MsgClass::LevelQuery,
        MsgClass::LevelQueryReply,
        MsgClass::Download,
        MsgClass::DownloadReply,
        MsgClass::TopListRequest,
        MsgClass::TopListReply,
    ];

    /// Stable wire name (used by the exporters and the CLI filters).
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Probe => "probe",
            MsgClass::ProbeAck => "probe_ack",
            MsgClass::Report => "report",
            MsgClass::ReportAck => "report_ack",
            MsgClass::Multicast => "multicast",
            MsgClass::MulticastAck => "multicast_ack",
            MsgClass::FindTop => "find_top",
            MsgClass::FindTopReply => "find_top_reply",
            MsgClass::LevelQuery => "level_query",
            MsgClass::LevelQueryReply => "level_query_reply",
            MsgClass::Download => "download",
            MsgClass::DownloadReply => "download_reply",
            MsgClass::TopListRequest => "top_list_request",
            MsgClass::TopListReply => "top_list_reply",
        }
    }

    /// Inverse of [`MsgClass::name`].
    pub fn parse(s: &str) -> Option<MsgClass> {
        MsgClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// State-event class, mirroring `peerwindow_core::EventKind` (minus the
/// payload fields: the trace only needs the category).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum EventClass {
    Join,
    Leave,
    LevelShift,
    InfoChange,
    Refresh,
}

impl EventClass {
    /// Every class, in declaration order.
    pub const ALL: [EventClass; 5] = [
        EventClass::Join,
        EventClass::Leave,
        EventClass::LevelShift,
        EventClass::InfoChange,
        EventClass::Refresh,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Join => "join",
            EventClass::Leave => "leave",
            EventClass::LevelShift => "level_shift",
            EventClass::InfoChange => "info_change",
            EventClass::Refresh => "refresh",
        }
    }

    /// Inverse of [`EventClass::name`].
    pub fn parse(s: &str) -> Option<EventClass> {
        EventClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// A §4.3 join-dissection step *completion*, recorded when the machine
/// transitions into the next phase. The initial FindTop request itself is
/// visible as the `msg_send` record of class `find_top`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum JoinPhase {
    /// Step 1 done: a covering top was found; the level query is out.
    LevelQuery,
    /// Step 2 done: level estimated; the bulk download is out.
    Download,
    /// Step 3 done: list installed; the node is active and its join
    /// multicast (step 4) is being reported.
    Active,
}

impl JoinPhase {
    /// Every phase, in §4.3 order.
    pub const ALL: [JoinPhase; 3] = [
        JoinPhase::LevelQuery,
        JoinPhase::Download,
        JoinPhase::Active,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JoinPhase::LevelQuery => "level_query",
            JoinPhase::Download => "download",
            JoinPhase::Active => "active",
        }
    }

    /// Inverse of [`JoinPhase::name`].
    pub fn parse(s: &str) -> Option<JoinPhase> {
        JoinPhase::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Diagnostic codes for embedder-level conditions that used to be raw
/// `eprintln!` sites (the transport runtime's frame/socket problems).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DiagCode {
    /// A frame exceeded the UDP datagram budget and was dropped.
    OversizedFrame,
    /// The machine emitted `Output::Fatal` and the runtime is stopping.
    Fatal,
    /// The socket returned a non-timeout error; the runtime is stopping.
    SocketError,
    /// A pointer's attached info failed to decode under every schema the
    /// query layer knows (neither an `InfoMap` nor a bloom attachment).
    /// Emitted by the query engine so foreign-attachment rot is
    /// observable instead of silently swallowed.
    InfoDecodeError,
}

impl DiagCode {
    /// Every code, in declaration order.
    pub const ALL: [DiagCode; 4] = [
        DiagCode::OversizedFrame,
        DiagCode::Fatal,
        DiagCode::SocketError,
        DiagCode::InfoDecodeError,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::OversizedFrame => "oversized_frame",
            DiagCode::Fatal => "fatal",
            DiagCode::SocketError => "socket_error",
            DiagCode::InfoDecodeError => "info_decode_error",
        }
    }

    /// Inverse of [`DiagCode::name`].
    pub fn parse(s: &str) -> Option<DiagCode> {
        DiagCode::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// What the fault layer did to a datagram, as recorded by the sims.
/// Clean deliveries are not recorded (they would dwarf the log); jittered
/// deliveries only perturb timing, which the normal `msg_recv` records
/// already show.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultClass {
    /// The datagram was dropped (loss, burst loss, or blackhole).
    Dropped,
    /// The datagram was delivered twice.
    Duplicated,
}

impl FaultClass {
    /// Every class, in declaration order.
    pub const ALL: [FaultClass; 2] = [FaultClass::Dropped, FaultClass::Duplicated];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Dropped => "dropped",
            FaultClass::Duplicated => "duplicated",
        }
    }

    /// Inverse of [`FaultClass::name`].
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// What happened. Node ids are raw `u128`s (`NodeId::raw()`) so the crate
/// stays dependency-free; levels are raw `u8` values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEventKind {
    /// A §4.3 join step completed (see [`JoinPhase`]).
    JoinStep {
        /// The phase just entered.
        phase: JoinPhase,
    },
    /// This node rooted a multicast: it applied the event and begins the
    /// §4.2 binary dissection at `step` (its level).
    McastRoot {
        /// Class of the disseminated event.
        class: EventClass,
        /// The root's responsibility-range length.
        step: u8,
    },
    /// One §4.2 tree edge: this node (the parent) forwarded the event to
    /// `child`, which becomes responsible for a range of length `step`.
    McastHop {
        /// Class of the disseminated event.
        class: EventClass,
        /// Receiver (raw node id).
        child: u128,
        /// Range length the receiver becomes responsible for.
        step: u8,
    },
    /// A multicast forward gave up on `old` (three unanswered attempts,
    /// §4.2) and was redirected to `new`.
    McastRedirect {
        /// Class of the disseminated event.
        class: EventClass,
        /// The unresponsive target that was dropped.
        old: u128,
        /// The replacement target.
        new: u128,
        /// Range length being handed over.
        step: u8,
    },
    /// A §4.1 ring probe was sent to `target`.
    ProbeSent {
        /// The probed successor.
        target: u128,
    },
    /// Probing gave up on `subject`: failure detected, obituary (a Leave
    /// event with the sentinel seq) reported.
    Obituary {
        /// The node declared dead.
        subject: u128,
    },
    /// This node heard its own obituary while alive and re-announced
    /// itself (§4.6 refutation). The cause is the *refutation* event.
    Refutation,
    /// The node shifted level (autonomic adaptation or explicit pin).
    LevelShift {
        /// Level before the shift.
        from: u8,
        /// Level after the shift.
        to: u8,
    },
    /// §4.6 expiry swept `count` stale pointers.
    PeersExpired {
        /// Pointers removed.
        count: u32,
    },
    /// A message left this node.
    MsgSend {
        /// Destination (raw node id).
        to: u128,
        /// Wire-message class.
        class: MsgClass,
        /// Wire size for bandwidth accounting.
        bits: u64,
    },
    /// A message arrived at this node.
    MsgRecv {
        /// Sender (raw node id).
        from: u128,
        /// Wire-message class.
        class: MsgClass,
        /// Wire size for bandwidth accounting.
        bits: u64,
    },
    /// An embedder-level diagnostic (see [`DiagCode`]).
    Diag {
        /// What happened.
        code: DiagCode,
    },
    /// The fault layer intercepted a datagram this node sent (see
    /// [`FaultClass`]). Emitted by the sim harness, not the machine:
    /// `node` is the sender, and `seq` lives in a reserved high-bit
    /// space so harness records never collide with the machine's own.
    NetFault {
        /// Destination of the afflicted datagram (raw node id).
        to: u128,
        /// What the network did to it.
        fault: FaultClass,
    },
}

impl TraceEventKind {
    /// Stable wire name of the kind (the JSONL `kind` field and the
    /// Chrome event name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::JoinStep { .. } => "join_step",
            TraceEventKind::McastRoot { .. } => "mcast_root",
            TraceEventKind::McastHop { .. } => "mcast_hop",
            TraceEventKind::McastRedirect { .. } => "mcast_redirect",
            TraceEventKind::ProbeSent { .. } => "probe",
            TraceEventKind::Obituary { .. } => "obituary",
            TraceEventKind::Refutation => "refutation",
            TraceEventKind::LevelShift { .. } => "level_shift",
            TraceEventKind::PeersExpired { .. } => "peers_expired",
            TraceEventKind::MsgSend { .. } => "msg_send",
            TraceEventKind::MsgRecv { .. } => "msg_recv",
            TraceEventKind::Diag { .. } => "diag",
            TraceEventKind::NetFault { .. } => "net_fault",
        }
    }
}

/// One trace record. `(node, seq)` is unique (the sink counts emissions
/// per node) and `at_us` is non-decreasing per node, so sorting by
/// `(at_us, node, seq)` is a total order — the canonical log order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Simulation time of the record, microseconds.
    pub at_us: u64,
    /// The recording node (raw id).
    pub node: u128,
    /// Per-node emission counter (monotone within one node).
    pub seq: u64,
    /// The recording node's level at emission time.
    pub level: u8,
    /// Causality id ([`CauseId::NONE`] for spontaneous actions).
    pub cause: CauseId,
    /// What happened.
    pub kind: TraceEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for c in MsgClass::ALL {
            assert_eq!(MsgClass::parse(c.name()), Some(c));
        }
        for c in EventClass::ALL {
            assert_eq!(EventClass::parse(c.name()), Some(c));
        }
        for p in JoinPhase::ALL {
            assert_eq!(JoinPhase::parse(p.name()), Some(p));
        }
        for d in DiagCode::ALL {
            assert_eq!(DiagCode::parse(d.name()), Some(d));
        }
        for f in FaultClass::ALL {
            assert_eq!(FaultClass::parse(f.name()), Some(f));
        }
        assert_eq!(MsgClass::parse("nonsense"), None);
    }

    #[test]
    fn cause_none_sentinel() {
        assert!(CauseId::NONE.is_none());
        assert!(!CauseId::new(3, 1).is_none());
    }
}
