//! Per-node record sinks and the deterministic merge.
//!
//! Each `NodeMachine` owns one [`NodeTrace`]; each embedder (the
//! sequential `FullSim` world, or one `ParallelEngine` shard) drains
//! machine buffers into its own `Vec<TraceRecord>` after every handled
//! event. No locks anywhere: a shard's buffer is only ever touched by the
//! thread running that shard — lock-free by construction. At collection
//! time the per-shard buffers are concatenated and [`canonical_sort`]ed;
//! because the sort key `(at_us, node, seq)` is unique per record and a
//! pure function of the protocol run (never of shard placement), 1-shard
//! and 4-shard runs emit byte-identical logs.

use crate::record::{CauseId, TraceEventKind, TraceRecord};

/// A statically-dispatched trace sink, so hot loops can be generic over
/// "traced" vs "untraced" and have the untraced instantiation *compiled
/// out* rather than branching per event.
///
/// [`NodeTrace`] is the real sink; [`NoopTrace`] is a zero-sized
/// implementation whose methods are empty `#[inline]` bodies — after
/// monomorphisation an untraced simulation contains no trace state, no
/// branch, and no dead record-building code (the event payload is built
/// inside the [`TraceSink::emit_with`] closure, which a no-op sink never
/// calls). This is what lets the bench suite measure the *compiled-out*
/// configuration honestly instead of a runtime-disabled flag.
pub trait TraceSink {
    /// `false` for sinks that discard everything; lets embedders skip
    /// whole bookkeeping blocks (`if T::ACTIVE { ... }`) that exist only
    /// to feed the sink.
    const ACTIVE: bool;

    /// Whether the sink is currently capturing (`false` for no-op sinks,
    /// the runtime flag for [`NodeTrace`]). Embedders guard their whole
    /// per-event trace block behind this — `T::ACTIVE && recording()`
    /// const-folds to `false` for a no-op sink and costs one predictable
    /// branch for a runtime-disabled one.
    fn recording(&self) -> bool;

    /// Sets the simulation time stamped onto subsequent records.
    fn set_now(&mut self, now_us: u64);

    /// Records an event. `kind` is a closure so building the payload is
    /// skipped entirely when the sink is a no-op (or runtime-disabled).
    fn emit_with(&mut self, level: u8, cause: CauseId, kind: impl FnOnce() -> TraceEventKind);

    /// Moves buffered records into `out` (no-op sinks leave it alone).
    fn drain_into(&mut self, out: &mut Vec<TraceRecord>);
}

/// The compiled-out trace sink: zero-sized, every method an empty inline
/// body. `Simulation<NoopTrace>` monomorphises to code with no tracing in
/// it at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopTrace;

impl NoopTrace {
    /// Creates the no-op sink; the `node` id is accepted (and discarded)
    /// so traced and untraced construction sites look identical.
    #[inline(always)]
    pub fn new(_node: u128) -> Self {
        NoopTrace
    }
}

impl TraceSink for NoopTrace {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn recording(&self) -> bool {
        false
    }

    #[inline(always)]
    fn set_now(&mut self, _now_us: u64) {}

    #[inline(always)]
    fn emit_with(&mut self, _level: u8, _cause: CauseId, _kind: impl FnOnce() -> TraceEventKind) {}

    #[inline(always)]
    fn drain_into(&mut self, _out: &mut Vec<TraceRecord>) {}
}

impl TraceSink for NodeTrace {
    const ACTIVE: bool = true;

    #[inline]
    fn recording(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn set_now(&mut self, now_us: u64) {
        NodeTrace::set_now(self, now_us);
    }

    #[inline]
    fn emit_with(&mut self, level: u8, cause: CauseId, kind: impl FnOnce() -> TraceEventKind) {
        if self.enabled {
            self.emit(level, kind(), cause);
        }
    }

    #[inline]
    fn drain_into(&mut self, out: &mut Vec<TraceRecord>) {
        NodeTrace::drain_into(self, out);
    }
}

/// A single node's trace buffer: an enabled flag, the per-node emission
/// counter, and the pending records. Cheap when disabled (one branch per
/// would-be record); embedders drain it after every handled input so the
/// buffer stays small.
#[derive(Clone, Debug, Default)]
pub struct NodeTrace {
    node: u128,
    enabled: bool,
    now_us: u64,
    seq: u64,
    buf: Vec<TraceRecord>,
}

impl NodeTrace {
    /// Creates a disabled sink for `node` (raw id).
    pub fn new(node: u128) -> Self {
        NodeTrace {
            node,
            enabled: false,
            now_us: 0,
            seq: 0,
            buf: Vec::new(),
        }
    }

    /// Turns recording on or off. Disabling does not clear the buffer.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether records are currently captured. Emission sites check this
    /// before building a [`TraceEventKind`], so a disabled sink costs one
    /// predictable branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the simulation time stamped onto subsequent records. Called
    /// once at the top of the machine's `handle`.
    #[inline]
    pub fn set_now(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Appends a record at the current time. `level` is the node's level
    /// at emission (it can change mid-handle, so the caller passes it).
    pub fn emit(&mut self, level: u8, kind: TraceEventKind, cause: CauseId) {
        let seq = self.seq;
        self.seq += 1;
        self.buf.push(TraceRecord {
            at_us: self.now_us,
            node: self.node,
            seq,
            level,
            cause,
            kind,
        });
    }

    /// Moves all buffered records into `out`, preserving order. The
    /// emission counter keeps counting across drains, so `(node, seq)`
    /// stays unique for the whole run.
    pub fn drain_into(&mut self, out: &mut Vec<TraceRecord>) {
        out.append(&mut self.buf);
    }

    /// Whether any records are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sorts records into the canonical log order `(at_us, node, seq)`.
///
/// The key is unique — `seq` is a per-node counter — and depends only on
/// the protocol run, so any interleaving of per-shard buffers sorts to
/// the same sequence. This is what makes the merged log a determinism
/// witness: diffing two canonical logs localises a divergence to the
/// first differing record.
pub fn canonical_sort(records: &mut [TraceRecord]) {
    records.sort_unstable_by_key(|r| (r.at_us, r.node, r.seq));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MsgClass;

    fn rec(t: &mut NodeTrace, at: u64, bits: u64) {
        t.set_now(at);
        t.emit(
            0,
            TraceEventKind::MsgSend {
                to: 9,
                class: MsgClass::Probe,
                bits,
            },
            CauseId::NONE,
        );
    }

    #[test]
    fn seq_counts_across_drains() {
        let mut t = NodeTrace::new(7);
        t.set_enabled(true);
        rec(&mut t, 10, 1);
        rec(&mut t, 20, 2);
        let mut out = Vec::new();
        t.drain_into(&mut out);
        rec(&mut t, 30, 3);
        t.drain_into(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "emission counter must survive drains"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn emit_with_skips_payload_when_disabled_or_noop() {
        // Disabled NodeTrace: closure must not run, nothing buffered.
        let mut t = NodeTrace::new(3);
        let mut built = 0u32;
        TraceSink::emit_with(&mut t, 0, CauseId::NONE, || {
            built += 1;
            TraceEventKind::MsgSend {
                to: 9,
                class: MsgClass::Probe,
                bits: 1,
            }
        });
        assert_eq!(built, 0);
        assert!(t.is_empty());

        // Enabled: closure runs once, record lands.
        t.set_enabled(true);
        TraceSink::emit_with(&mut t, 0, CauseId::NONE, || {
            built += 1;
            TraceEventKind::MsgSend {
                to: 9,
                class: MsgClass::Probe,
                bits: 1,
            }
        });
        assert_eq!(built, 1);
        assert!(!t.is_empty());

        // NoopTrace: statically inert.
        assert!(!NoopTrace::ACTIVE);
        let mut n = NoopTrace::new(3);
        TraceSink::emit_with(&mut n, 0, CauseId::NONE, || {
            built += 10;
            TraceEventKind::MsgSend {
                to: 9,
                class: MsgClass::Probe,
                bits: 1,
            }
        });
        assert_eq!(built, 1, "no-op sink must never build the payload");
        let mut out = Vec::new();
        TraceSink::drain_into(&mut n, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn canonical_sort_is_shard_interleaving_invariant() {
        // Two "shards" buffer the same records in different interleavings.
        let mut a = NodeTrace::new(1);
        let mut b = NodeTrace::new(2);
        a.set_enabled(true);
        b.set_enabled(true);
        rec(&mut a, 10, 1);
        rec(&mut b, 10, 2);
        rec(&mut a, 20, 3);
        rec(&mut b, 15, 4);

        let mut order1 = Vec::new();
        a.clone().drain_into(&mut order1);
        b.clone().drain_into(&mut order1);
        let mut order2 = Vec::new();
        b.drain_into(&mut order2);
        a.drain_into(&mut order2);

        canonical_sort(&mut order1);
        canonical_sort(&mut order2);
        assert_eq!(order1, order2);
        assert_eq!(
            order1.iter().map(|r| (r.at_us, r.node)).collect::<Vec<_>>(),
            vec![(10, 1), (10, 2), (15, 2), (20, 1)]
        );
    }
}
