//! Sim-time structured tracing for PeerWindow.
//!
//! The paper validates PeerWindow by *measuring* it (§4: bandwidth per
//! event class, multicast coverage, failure-detection delay); this crate
//! is the measurement substrate for our reproduction. It records typed
//! protocol events — join steps, multicast tree hops with parent→child
//! edges, probe rounds, obituaries and refutations, level shifts, and
//! every message send/receive with its wire class and size — keyed by
//! **simulation time** (the virtual clock of `peerwindow-des`), never by
//! `std::time`.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** A [`TraceRecord`] carries `(at_us, node, seq)`
//!    where `seq` is a per-node emission counter, so the canonical sort
//!    ([`canonical_sort`]) is a total order independent of which
//!    `ParallelEngine` shard buffered the record. 1-shard and 4-shard
//!    runs of the same scenario emit byte-identical logs (asserted by the
//!    workspace determinism tests), extending the PR 2 contract.
//! 2. **Allocation-light.** [`TraceEventKind`] is `Copy` (node ids are
//!    raw `u128`s, no strings, no boxing); a [`NodeTrace`] sink is a
//!    plain `Vec` push behind an `enabled` branch. The whole crate is
//!    dependency-free so `peerwindow-core` can carry it behind a
//!    default-off `trace` feature without widening its closure.
//! 3. **Reconstructable.** Every record carries a [`CauseId`] — the
//!    `(subject, seq)` key of the `StateEvent` that caused it — so a
//!    multicast can be reassembled into its dissemination tree after the
//!    fact ([`query::reconstruct_tree`]) and compared against the §4.2
//!    planner's prediction.
//!
//! Exporters: newline-delimited JSON ([`jsonl`]), Chrome `trace_event`
//! JSON for chrome://tracing ([`chrome`]) — both round-trip (parse-back
//! equals emitted, asserted by tests) — and a per-message-class
//! bandwidth aggregation ([`query::bandwidth_by_class`]) matching the
//! paper's §4 figures. The [`CounterRegistry`] is the metrics half:
//! named counters/gauges sampled on a sim-time tick and rendered through
//! `peerwindow-metrics` tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod query;
mod record;
mod registry;
mod sink;

pub use query::{bandwidth_by_class, reconstruct_tree, BandwidthRow, Filter, McastTree};
pub use record::{
    CauseId, DiagCode, EventClass, FaultClass, JoinPhase, MsgClass, TraceEventKind, TraceRecord,
};
pub use registry::{CounterRegistry, SampleSeries};
pub use sink::{canonical_sort, NodeTrace, NoopTrace, TraceSink};

/// Errors from the JSONL / Chrome parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, for humans.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}
