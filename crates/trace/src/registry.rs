//! Named counter/gauge registry, sampled on a sim-time tick.
//!
//! The trace log answers "what happened, in order"; the registry answers
//! "how much, over time". Counters are cumulative `u64`s (messages by
//! class, bits by event type, RPC retries); gauges are point-in-time
//! `f64`s (peer-list sizes, pending-event counts). Ordered maps keep the
//! rendering deterministic — same contract as every other piece of
//! protocol state in this workspace.

use std::collections::BTreeMap;

/// A deterministic name→value store for counters and gauges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets counter `name` to an absolute value (for sampled totals).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sums `other`'s counters into this registry and adopts its gauges
    /// (last writer wins — used when merging per-shard registries).
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (k, v) in other.counters() {
            self.add(k, v);
        }
        for (k, v) in other.gauges() {
            self.set_gauge(k, v);
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

/// A time series of registry snapshots: one row per `(tick, name)`. The
/// embedding harness calls [`SampleSeries::sample`] on each sim-time tick
/// (e.g. every simulated second); `peerwindow-metrics` renders the rows.
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    rows: Vec<(u64, String, f64)>,
}

impl SampleSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots every counter and gauge of `reg` at sim time `at_us`.
    pub fn sample(&mut self, at_us: u64, reg: &CounterRegistry) {
        for (k, v) in reg.counters() {
            self.rows.push((at_us, k.to_string(), v as f64));
        }
        for (k, v) in reg.gauges() {
            self.rows.push((at_us, k.to_string(), v));
        }
    }

    /// The collected `(at_us, name, value)` rows, in sampling order.
    pub fn rows(&self) -> &[(u64, String, f64)] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_iterate_in_name_order() {
        let mut r = CounterRegistry::new();
        r.inc("msgs.probe");
        r.add("msgs.probe", 2);
        r.add("bits.join", 1_000);
        r.set_gauge("peers.mean", 12.5);
        assert_eq!(r.counter("msgs.probe"), 3);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("peers.mean"), Some(12.5));
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["bits.join", "msgs.probe"]);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CounterRegistry::new();
        a.add("x", 1);
        let mut b = CounterRegistry::new();
        b.add("x", 2);
        b.set_gauge("g", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.gauge("g"), Some(3.0));
    }

    #[test]
    fn series_snapshots_all_names() {
        let mut r = CounterRegistry::new();
        r.add("c", 4);
        r.set_gauge("g", 0.5);
        let mut s = SampleSeries::new();
        s.sample(1_000_000, &r);
        r.add("c", 1);
        s.sample(2_000_000, &r);
        assert_eq!(s.rows().len(), 4);
        assert_eq!(s.rows()[0], (1_000_000, "c".to_string(), 4.0));
        assert_eq!(s.rows()[2], (2_000_000, "c".to_string(), 5.0));
    }
}
