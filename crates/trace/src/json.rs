//! A minimal JSON writer and parser.
//!
//! The vendored `serde_json` is a stub (this container builds offline),
//! so the exporters — and the cluster tooling's control protocol, which
//! is why this module is public — hand-roll the subset of JSON they
//! need: objects, arrays, strings, and unsigned integers, which is
//! exactly what trace records serialise to. The parser is tolerant of
//! whitespace and field order but rejects anything outside that subset
//! loudly.

use crate::ParseError;

/// A parsed JSON value (the subset the trace formats use).
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    /// Unsigned integer.
    Num(u64),
    /// String.
    Str(String),
    /// Object, in source order.
    Obj(Vec<(String, JVal)>),
    /// Array.
    Arr(Vec<JVal>),
}

impl JVal {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Escapes `s` into a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON value from `s` (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<JVal, ParseError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::new(format!(
            "trailing garbage at byte {pos} of {}",
            bytes.len()
        )));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::new(format!(
            "expected '{}' at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JVal::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        Some(c) => Err(ParseError::new(format!(
            "unexpected '{}' at byte {}",
            *c as char, *pos
        ))),
        None => Err(ParseError::new("unexpected end of input")),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JVal::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JVal::Obj(fields));
            }
            _ => return Err(ParseError::new(format!("expected ',' or '}}' at {}", *pos))),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JVal::Arr(items));
            }
            _ => return Err(ParseError::new(format!("expected ',' or ']' at {}", *pos))),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::new("bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| ParseError::new("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError::new("unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences are
                // passed through verbatim).
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&b[start..end])
                    .map_err(|_| ParseError::new("invalid utf-8 in string"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JVal, ParseError> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are utf-8");
    text.parse::<u64>()
        .map(JVal::Num)
        .map_err(|_| ParseError::new(format!("number out of range at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_subset() {
        let doc = r#"{"a": 1, "b": "x\"y", "c": [ {"d": 2}, 3 ], "e": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        let JVal::Arr(items) = v.get("c").unwrap() else {
            panic!("c should be an array");
        };
        assert_eq!(items[0].get("d").unwrap().as_num(), Some(2));
        assert_eq!(items[1].as_num(), Some(3));
        assert_eq!(v.get("e"), Some(&JVal::Obj(vec![])));
    }

    #[test]
    fn escape_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "tab\there \"quoted\" \\ \u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("tab\there \"quoted\" \\ \u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("-1").is_err(), "negatives are outside the subset");
    }
}
