//! Offline queries over a trace: filtering, multicast-tree
//! reconstruction, log diffing, and per-class bandwidth accounting.
//!
//! Everything here operates on a plain `&[TraceRecord]` slice — typically
//! a canonical log loaded back from JSONL — and powers the `pwtrace` CLI.

use crate::record::{CauseId, MsgClass, TraceEventKind, TraceRecord};

/// The class name carried by a record, when it has one: the event class
/// of multicast records, or the message class of send/receive records.
fn class_name(kind: &TraceEventKind) -> Option<&'static str> {
    match kind {
        TraceEventKind::McastRoot { class, .. }
        | TraceEventKind::McastHop { class, .. }
        | TraceEventKind::McastRedirect { class, .. } => Some(class.name()),
        TraceEventKind::MsgSend { class, .. } | TraceEventKind::MsgRecv { class, .. } => {
            Some(class.name())
        }
        _ => None,
    }
}

/// A conjunctive record filter. `None` fields match everything; `class`
/// matches both event classes (`"join"`, `"leave"`, …) and message
/// classes (`"probe"`, `"multicast"`, …).
#[derive(Clone, Debug, Default)]
pub struct Filter {
    /// Keep records emitted by this node (raw id).
    pub node: Option<u128>,
    /// Keep records at or after this time.
    pub from_us: Option<u64>,
    /// Keep records strictly before this time.
    pub to_us: Option<u64>,
    /// Keep records of this kind (wire name, e.g. `"mcast_hop"`).
    pub kind: Option<String>,
    /// Keep records carrying this class name.
    pub class: Option<String>,
    /// Keep records of this causal flow.
    pub cause: Option<CauseId>,
}

impl Filter {
    /// Whether `r` passes every set criterion.
    pub fn matches(&self, r: &TraceRecord) -> bool {
        if let Some(node) = self.node {
            if r.node != node {
                return false;
            }
        }
        if let Some(from) = self.from_us {
            if r.at_us < from {
                return false;
            }
        }
        if let Some(to) = self.to_us {
            if r.at_us >= to {
                return false;
            }
        }
        if let Some(kind) = &self.kind {
            if r.kind.name() != kind {
                return false;
            }
        }
        if let Some(class) = &self.class {
            if class_name(&r.kind) != Some(class.as_str()) {
                return false;
            }
        }
        if let Some(cause) = self.cause {
            if r.cause != cause {
                return false;
            }
        }
        true
    }
}

/// Returns the records passing `f`, in input order.
pub fn filter(records: &[TraceRecord], f: &Filter) -> Vec<TraceRecord> {
    records.iter().filter(|r| f.matches(r)).copied().collect()
}

/// One reconstructed tree edge: `parent` forwarded the event to `child`,
/// handing over a range of length `step`, at time `at_us`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeHop {
    /// Sender (raw node id).
    pub parent: u128,
    /// Receiver (raw node id).
    pub child: u128,
    /// Range length handed over.
    pub step: u8,
    /// Send time.
    pub at_us: u64,
}

/// A multicast tree reassembled from the `mcast_*` records of one cause.
#[derive(Clone, Debug, Default)]
pub struct McastTree {
    /// The causal flow this tree belongs to.
    pub cause: CauseId,
    /// The root (the node that emitted `mcast_root`), when recorded.
    pub root: Option<u128>,
    /// Edges, in record order.
    pub hops: Vec<TreeHop>,
    /// Redirects observed (`mcast_redirect` records) for this cause.
    pub redirects: usize,
}

impl McastTree {
    /// Distinct receivers — matches `TreeStats::receivers` when delivery
    /// was exactly-once.
    pub fn receivers(&self) -> usize {
        let mut children: Vec<u128> = self.hops.iter().map(|h| h.child).collect();
        children.sort_unstable();
        children.dedup();
        children.len()
    }

    /// Maximum hop count from the root (root's children are depth 1).
    /// Hops are recorded at send time, so a parent's edge always precedes
    /// its children's edges; one pass in record order suffices.
    pub fn max_depth(&self) -> u32 {
        let Some(root) = self.root else { return 0 };
        let mut depth: std::collections::BTreeMap<u128, u32> = std::collections::BTreeMap::new();
        depth.insert(root, 0);
        let mut max = 0;
        for h in &self.hops {
            if let Some(&d) = depth.get(&h.parent) {
                let child = depth.entry(h.child).or_insert(d + 1);
                max = max.max(*child);
            }
        }
        max
    }

    /// Out-degree of the root.
    pub fn root_out_degree(&self) -> usize {
        match self.root {
            Some(root) => self.hops.iter().filter(|h| h.parent == root).count(),
            None => 0,
        }
    }
}

/// Reassembles the multicast tree of `cause` from a log. The root comes
/// from the `mcast_root` record; if the trace window missed it (e.g.
/// recording started mid-flight), the fallback is the unique parent that
/// never appears as a child.
pub fn reconstruct_tree(records: &[TraceRecord], cause: CauseId) -> McastTree {
    let mut tree = McastTree {
        cause,
        ..McastTree::default()
    };
    for r in records {
        if r.cause != cause {
            continue;
        }
        match r.kind {
            TraceEventKind::McastRoot { .. } => tree.root = Some(r.node),
            TraceEventKind::McastHop { child, step, .. } => tree.hops.push(TreeHop {
                parent: r.node,
                child,
                step,
                at_us: r.at_us,
            }),
            TraceEventKind::McastRedirect { .. } => tree.redirects += 1,
            _ => {}
        }
    }
    if tree.root.is_none() {
        let mut parents: Vec<u128> = tree.hops.iter().map(|h| h.parent).collect();
        parents.sort_unstable();
        parents.dedup();
        parents.retain(|p| !tree.hops.iter().any(|h| h.child == *p));
        if let [only] = parents[..] {
            tree.root = Some(only);
        }
    }
    tree
}

/// Every cause with at least one `mcast_hop` record, with its hop count,
/// largest first (ties broken by cause id). The CLI uses the head of this
/// list as the default tree to reconstruct.
pub fn causes_by_hops(records: &[TraceRecord]) -> Vec<(CauseId, usize)> {
    let mut counts: std::collections::BTreeMap<CauseId, usize> = std::collections::BTreeMap::new();
    for r in records {
        if matches!(r.kind, TraceEventKind::McastHop { .. }) {
            *counts.entry(r.cause).or_default() += 1;
        }
    }
    let mut out: Vec<(CauseId, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Compares two canonical logs record by record. Returns one human-
/// readable line per divergence; empty means the logs are identical.
/// Both inputs must already be in canonical order (see
/// [`crate::canonical_sort`]).
pub fn diff(a: &[TraceRecord], b: &[TraceRecord]) -> Vec<String> {
    let key = |r: &TraceRecord| (r.at_us, r.node, r.seq);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match key(&a[i]).cmp(&key(&b[j])) {
            std::cmp::Ordering::Equal => {
                if a[i] != b[j] {
                    out.push(format!(
                        "differs: {} | {}",
                        crate::jsonl::to_line(&a[i]),
                        crate::jsonl::to_line(&b[j])
                    ));
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                out.push(format!("only in first: {}", crate::jsonl::to_line(&a[i])));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(format!("only in second: {}", crate::jsonl::to_line(&b[j])));
                j += 1;
            }
        }
    }
    for r in &a[i..] {
        out.push(format!("only in first: {}", crate::jsonl::to_line(r)));
    }
    for r in &b[j..] {
        out.push(format!("only in second: {}", crate::jsonl::to_line(r)));
    }
    out
}

/// One row of the per-class bandwidth table, aggregated over `msg_send`
/// records (counting sends, not receipts, avoids double counting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BandwidthRow {
    /// Message class.
    pub class: MsgClass,
    /// Messages sent.
    pub msgs: u64,
    /// Total wire bits.
    pub bits: u64,
}

/// Aggregates send traffic by message class, rows in [`MsgClass::ALL`]
/// order, classes with no traffic omitted.
pub fn bandwidth_by_class(records: &[TraceRecord]) -> Vec<BandwidthRow> {
    let mut msgs = [0u64; MsgClass::ALL.len()];
    let mut bits = [0u64; MsgClass::ALL.len()];
    for r in records {
        if let TraceEventKind::MsgSend { class, bits: b, .. } = r.kind {
            let i = MsgClass::ALL.iter().position(|c| *c == class).expect("ALL");
            msgs[i] += 1;
            bits[i] += b;
        }
    }
    MsgClass::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| msgs[*i] > 0)
        .map(|(i, class)| BandwidthRow {
            class,
            msgs: msgs[i],
            bits: bits[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventClass;

    fn hop(at_us: u64, node: u128, seq: u64, child: u128, cause: CauseId) -> TraceRecord {
        TraceRecord {
            at_us,
            node,
            seq,
            level: 0,
            cause,
            kind: TraceEventKind::McastHop {
                class: EventClass::Join,
                child,
                step: 1,
            },
        }
    }

    fn root(at_us: u64, node: u128, cause: CauseId) -> TraceRecord {
        TraceRecord {
            at_us,
            node,
            seq: 0,
            level: 0,
            cause,
            kind: TraceEventKind::McastRoot {
                class: EventClass::Join,
                step: 0,
            },
        }
    }

    #[test]
    fn filter_conjunction() {
        let c = CauseId::new(9, 1);
        let records = vec![root(5, 1, c), hop(10, 1, 1, 2, c), hop(20, 2, 0, 3, c)];
        let f = Filter {
            node: Some(1),
            from_us: Some(6),
            ..Filter::default()
        };
        assert_eq!(filter(&records, &f).len(), 1);
        let f = Filter {
            kind: Some("mcast_hop".into()),
            class: Some("join".into()),
            cause: Some(c),
            ..Filter::default()
        };
        assert_eq!(filter(&records, &f).len(), 2);
        let f = Filter {
            class: Some("leave".into()),
            ..Filter::default()
        };
        assert!(filter(&records, &f).is_empty());
    }

    #[test]
    fn tree_reconstruction_depth_and_fanout() {
        // root 1 → {2, 3}; 2 → 4; 4 → 5. Depth 3, five nodes, four edges.
        let c = CauseId::new(9, 1);
        let records = vec![
            root(0, 1, c),
            hop(0, 1, 1, 2, c),
            hop(0, 1, 2, 3, c),
            hop(10, 2, 0, 4, c),
            hop(20, 4, 0, 5, c),
            // Unrelated cause must be ignored.
            hop(1, 1, 3, 7, CauseId::new(8, 2)),
        ];
        let t = reconstruct_tree(&records, c);
        assert_eq!(t.root, Some(1));
        assert_eq!(t.hops.len(), 4);
        assert_eq!(t.receivers(), 4);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.root_out_degree(), 2);
        assert_eq!(t.redirects, 0);
        assert_eq!(
            causes_by_hops(&records),
            vec![(c, 4), (CauseId::new(8, 2), 1)]
        );
    }

    #[test]
    fn tree_root_falls_back_to_parentless_node() {
        let c = CauseId::new(9, 1);
        let records = vec![hop(0, 1, 0, 2, c), hop(10, 2, 0, 3, c)];
        let t = reconstruct_tree(&records, c);
        assert_eq!(t.root, Some(1));
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn diff_reports_divergence_and_self_diff_is_empty() {
        let c = CauseId::new(9, 1);
        let a = vec![root(0, 1, c), hop(10, 1, 1, 2, c)];
        assert!(diff(&a, &a).is_empty());
        let mut b = a.clone();
        b[1] = hop(10, 1, 1, 3, c); // same key, different payload
        b.push(hop(20, 2, 0, 4, c));
        let d = diff(&a, &b);
        assert_eq!(d.len(), 2);
        assert!(d[0].starts_with("differs:"));
        assert!(d[1].starts_with("only in second:"));
    }

    #[test]
    fn bandwidth_aggregates_sends_only() {
        let mk = |class, bits, recv| TraceRecord {
            at_us: 0,
            node: 1,
            seq: 0,
            level: 0,
            cause: CauseId::NONE,
            kind: if recv {
                TraceEventKind::MsgRecv {
                    from: 2,
                    class,
                    bits,
                }
            } else {
                TraceEventKind::MsgSend { to: 2, class, bits }
            },
        };
        let records = vec![
            mk(MsgClass::Probe, 100, false),
            mk(MsgClass::Probe, 100, false),
            mk(MsgClass::Multicast, 500, false),
            mk(MsgClass::Probe, 100, true), // receive: not counted
        ];
        let rows = bandwidth_by_class(&records);
        assert_eq!(
            rows,
            vec![
                BandwidthRow {
                    class: MsgClass::Probe,
                    msgs: 2,
                    bits: 200
                },
                BandwidthRow {
                    class: MsgClass::Multicast,
                    msgs: 1,
                    bits: 500
                },
            ]
        );
    }
}
