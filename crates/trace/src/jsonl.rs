//! Newline-delimited JSON export — the canonical log format.
//!
//! One record per line, fields in a fixed order, node ids as 32-digit
//! lower-case hex, causes as `"<subject-hex>#<seq>"` (`"-"` for none).
//! Fixed field order matters: the determinism tests compare logs as raw
//! bytes, so the encoder must be a pure function of the record.

use crate::json::{self, JVal};
use crate::record::{
    CauseId, DiagCode, EventClass, FaultClass, JoinPhase, MsgClass, TraceEventKind, TraceRecord,
};
use crate::ParseError;

/// A flat (string or number) field value, shared with the Chrome
/// exporter which mirrors these fields into `args`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Flat {
    /// Unsigned integer field.
    N(u64),
    /// String field.
    S(String),
}

fn hex_id(id: u128) -> String {
    format!("{id:032x}")
}

fn cause_str(c: CauseId) -> String {
    if c.is_none() {
        "-".to_string()
    } else {
        format!("{}#{}", hex_id(c.subject), c.seq)
    }
}

fn parse_id(s: &str) -> Result<u128, ParseError> {
    u128::from_str_radix(s, 16).map_err(|_| ParseError::new(format!("bad node id {s:?}")))
}

fn parse_cause(s: &str) -> Result<CauseId, ParseError> {
    if s == "-" {
        return Ok(CauseId::NONE);
    }
    let (subject, seq) = s
        .split_once('#')
        .ok_or_else(|| ParseError::new(format!("bad cause {s:?}")))?;
    Ok(CauseId::new(
        parse_id(subject)?,
        seq.parse::<u64>()
            .map_err(|_| ParseError::new(format!("bad cause seq {s:?}")))?,
    ))
}

/// The record as an ordered flat field list: the JSONL line layout, and
/// the Chrome event's `args`.
pub(crate) fn flat_fields(r: &TraceRecord) -> Vec<(&'static str, Flat)> {
    let mut f = vec![
        ("t", Flat::N(r.at_us)),
        ("node", Flat::S(hex_id(r.node))),
        ("seq", Flat::N(r.seq)),
        ("level", Flat::N(r.level as u64)),
        ("cause", Flat::S(cause_str(r.cause))),
        ("kind", Flat::S(r.kind.name().to_string())),
    ];
    match r.kind {
        TraceEventKind::JoinStep { phase } => {
            f.push(("phase", Flat::S(phase.name().to_string())));
        }
        TraceEventKind::McastRoot { class, step } => {
            f.push(("class", Flat::S(class.name().to_string())));
            f.push(("step", Flat::N(step as u64)));
        }
        TraceEventKind::McastHop { class, child, step } => {
            f.push(("class", Flat::S(class.name().to_string())));
            f.push(("child", Flat::S(hex_id(child))));
            f.push(("step", Flat::N(step as u64)));
        }
        TraceEventKind::McastRedirect {
            class,
            old,
            new,
            step,
        } => {
            f.push(("class", Flat::S(class.name().to_string())));
            f.push(("old", Flat::S(hex_id(old))));
            f.push(("new", Flat::S(hex_id(new))));
            f.push(("step", Flat::N(step as u64)));
        }
        TraceEventKind::ProbeSent { target } => {
            f.push(("target", Flat::S(hex_id(target))));
        }
        TraceEventKind::Obituary { subject } => {
            f.push(("subject", Flat::S(hex_id(subject))));
        }
        TraceEventKind::Refutation => {}
        TraceEventKind::LevelShift { from, to } => {
            f.push(("from", Flat::N(from as u64)));
            f.push(("to", Flat::N(to as u64)));
        }
        TraceEventKind::PeersExpired { count } => {
            f.push(("count", Flat::N(count as u64)));
        }
        TraceEventKind::MsgSend { to, class, bits } => {
            f.push(("to", Flat::S(hex_id(to))));
            f.push(("class", Flat::S(class.name().to_string())));
            f.push(("bits", Flat::N(bits)));
        }
        TraceEventKind::MsgRecv { from, class, bits } => {
            f.push(("from", Flat::S(hex_id(from))));
            f.push(("class", Flat::S(class.name().to_string())));
            f.push(("bits", Flat::N(bits)));
        }
        TraceEventKind::Diag { code } => {
            f.push(("code", Flat::S(code.name().to_string())));
        }
        TraceEventKind::NetFault { to, fault } => {
            f.push(("to", Flat::S(hex_id(to))));
            f.push(("fault", Flat::S(fault.name().to_string())));
        }
    }
    f
}

/// Renders one record as its JSONL line (no trailing newline).
pub fn to_line(r: &TraceRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    for (i, (k, v)) in flat_fields(r).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, k);
        out.push(':');
        match v {
            Flat::N(n) => out.push_str(&n.to_string()),
            Flat::S(s) => json::write_str(&mut out, s),
        }
    }
    out.push('}');
    out
}

/// Renders records as a complete JSONL document (one line each, trailing
/// newline included — so byte comparison of two logs is line comparison).
pub fn to_string(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&to_line(r));
        out.push('\n');
    }
    out
}

fn num_field(obj: &JVal, key: &str) -> Result<u64, ParseError> {
    obj.get(key)
        .and_then(JVal::as_num)
        .ok_or_else(|| ParseError::new(format!("missing numeric field {key:?}")))
}

fn str_field<'a>(obj: &'a JVal, key: &str) -> Result<&'a str, ParseError> {
    obj.get(key)
        .and_then(JVal::as_str)
        .ok_or_else(|| ParseError::new(format!("missing string field {key:?}")))
}

fn id_field(obj: &JVal, key: &str) -> Result<u128, ParseError> {
    parse_id(str_field(obj, key)?)
}

fn class_field(obj: &JVal) -> Result<EventClass, ParseError> {
    let s = str_field(obj, "class")?;
    EventClass::parse(s).ok_or_else(|| ParseError::new(format!("unknown event class {s:?}")))
}

fn msg_class_field(obj: &JVal) -> Result<MsgClass, ParseError> {
    let s = str_field(obj, "class")?;
    MsgClass::parse(s).ok_or_else(|| ParseError::new(format!("unknown message class {s:?}")))
}

/// Rebuilds a record from a parsed flat object (shared with the Chrome
/// importer, whose `args` mirror the JSONL fields).
pub(crate) fn record_from_obj(obj: &JVal) -> Result<TraceRecord, ParseError> {
    let kind_name = str_field(obj, "kind")?;
    let kind = match kind_name {
        "join_step" => {
            let s = str_field(obj, "phase")?;
            TraceEventKind::JoinStep {
                phase: JoinPhase::parse(s)
                    .ok_or_else(|| ParseError::new(format!("unknown join phase {s:?}")))?,
            }
        }
        "mcast_root" => TraceEventKind::McastRoot {
            class: class_field(obj)?,
            step: num_field(obj, "step")? as u8,
        },
        "mcast_hop" => TraceEventKind::McastHop {
            class: class_field(obj)?,
            child: id_field(obj, "child")?,
            step: num_field(obj, "step")? as u8,
        },
        "mcast_redirect" => TraceEventKind::McastRedirect {
            class: class_field(obj)?,
            old: id_field(obj, "old")?,
            new: id_field(obj, "new")?,
            step: num_field(obj, "step")? as u8,
        },
        "probe" => TraceEventKind::ProbeSent {
            target: id_field(obj, "target")?,
        },
        "obituary" => TraceEventKind::Obituary {
            subject: id_field(obj, "subject")?,
        },
        "refutation" => TraceEventKind::Refutation,
        "level_shift" => TraceEventKind::LevelShift {
            from: num_field(obj, "from")? as u8,
            to: num_field(obj, "to")? as u8,
        },
        "peers_expired" => TraceEventKind::PeersExpired {
            count: num_field(obj, "count")? as u32,
        },
        "msg_send" => TraceEventKind::MsgSend {
            to: id_field(obj, "to")?,
            class: msg_class_field(obj)?,
            bits: num_field(obj, "bits")?,
        },
        "msg_recv" => TraceEventKind::MsgRecv {
            from: id_field(obj, "from")?,
            class: msg_class_field(obj)?,
            bits: num_field(obj, "bits")?,
        },
        "diag" => {
            let s = str_field(obj, "code")?;
            TraceEventKind::Diag {
                code: DiagCode::parse(s)
                    .ok_or_else(|| ParseError::new(format!("unknown diag code {s:?}")))?,
            }
        }
        "net_fault" => {
            let s = str_field(obj, "fault")?;
            TraceEventKind::NetFault {
                to: id_field(obj, "to")?,
                fault: FaultClass::parse(s)
                    .ok_or_else(|| ParseError::new(format!("unknown fault class {s:?}")))?,
            }
        }
        other => return Err(ParseError::new(format!("unknown record kind {other:?}"))),
    };
    Ok(TraceRecord {
        at_us: num_field(obj, "t")?,
        node: id_field(obj, "node")?,
        seq: num_field(obj, "seq")?,
        level: num_field(obj, "level")? as u8,
        cause: parse_cause(str_field(obj, "cause")?)?,
        kind,
    })
}

/// Parses one JSONL line.
pub fn parse_line(line: &str) -> Result<TraceRecord, ParseError> {
    record_from_obj(&json::parse(line)?)
}

/// Parses a whole JSONL document (blank lines skipped).
pub fn parse_string(doc: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            parse_line(line)
                .map_err(|e| ParseError::new(format!("line {}: {}", i + 1, e.message)))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::record::{CauseId, DiagCode, EventClass, FaultClass, JoinPhase, MsgClass};

    /// One record of every kind — exporters must round-trip all of them.
    pub(crate) fn one_of_each() -> Vec<TraceRecord> {
        let mk = |at_us, seq, kind| TraceRecord {
            at_us,
            node: 0xDEAD_BEEF_0000_0000_0000_0000_0000_0042,
            seq,
            level: 3,
            cause: CauseId::new(0x77, 9),
            kind,
        };
        vec![
            mk(
                1,
                0,
                TraceEventKind::JoinStep {
                    phase: JoinPhase::LevelQuery,
                },
            ),
            mk(
                2,
                1,
                TraceEventKind::McastRoot {
                    class: EventClass::Join,
                    step: 0,
                },
            ),
            mk(
                3,
                2,
                TraceEventKind::McastHop {
                    class: EventClass::Leave,
                    child: 0x1234,
                    step: 2,
                },
            ),
            mk(
                4,
                3,
                TraceEventKind::McastRedirect {
                    class: EventClass::Refresh,
                    old: 0x1,
                    new: 0x2,
                    step: 5,
                },
            ),
            mk(5, 4, TraceEventKind::ProbeSent { target: 0xABC }),
            mk(6, 5, TraceEventKind::Obituary { subject: 0xABC }),
            TraceRecord {
                cause: CauseId::NONE,
                ..mk(7, 6, TraceEventKind::Refutation)
            },
            mk(8, 7, TraceEventKind::LevelShift { from: 0, to: 2 }),
            mk(9, 8, TraceEventKind::PeersExpired { count: 4 }),
            mk(
                10,
                9,
                TraceEventKind::MsgSend {
                    to: u128::MAX,
                    class: MsgClass::DownloadReply,
                    bits: 65_000,
                },
            ),
            mk(
                11,
                10,
                TraceEventKind::MsgRecv {
                    from: 0,
                    class: MsgClass::LevelQueryReply,
                    bits: 96,
                },
            ),
            mk(
                12,
                11,
                TraceEventKind::Diag {
                    code: DiagCode::OversizedFrame,
                },
            ),
            mk(
                13,
                1 << 63, // harness records use the reserved high-bit seq space
                TraceEventKind::NetFault {
                    to: 0x5150,
                    fault: FaultClass::Dropped,
                },
            ),
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        let records = one_of_each();
        let doc = to_string(&records);
        let back = parse_string(&doc).unwrap();
        assert_eq!(back, records);
        // And the re-emission is byte-identical (pure encoder).
        assert_eq!(to_string(&back), doc);
    }

    #[test]
    fn line_format_is_stable() {
        let r = &one_of_each()[2];
        assert_eq!(
            to_line(r),
            "{\"t\":3,\"node\":\"deadbeef000000000000000000000042\",\"seq\":2,\
             \"level\":3,\"cause\":\"00000000000000000000000000000077#9\",\
             \"kind\":\"mcast_hop\",\"class\":\"leave\",\
             \"child\":\"00000000000000000000000000001234\",\"step\":2}"
        );
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(parse_line("{}").is_err());
        assert!(parse_line("{\"t\":1}").is_err());
        let mut good = to_line(&one_of_each()[0]);
        good.push('x');
        assert!(parse_line(&good).is_err());
    }
}
