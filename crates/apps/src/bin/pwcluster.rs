//! Real-process chaos harness: launches N `pwnode` OS processes over UDP
//! loopback, applies a seeded fault plan cluster-wide through the
//! userspace netem shim, supervises crashes with jittered-backoff
//! restarts, and asserts the partition-aware settle oracle against the
//! live cluster.
//!
//! ```text
//! pwcluster --nodes 8 --base-port 17000 --plan partition-heal --kill-one \
//!           --pwnode target/debug/pwnode --out summary.json
//! ```
//!
//! The run is phased:
//!
//! 1. **Join wave.** Node 0 seeds; the rest bootstrap off it, staggered,
//!    with per-node bandwidth budgets drawn from the Saroiu-calibrated
//!    workload model. Every process shares one shim-spec file (roster +
//!    epoch + plan), so each judges its outbound datagrams from the same
//!    per-link seeded streams.
//! 2. **Partition window** (`--plan partition-heal`): odd-indexed nodes
//!    are blackholed from even-indexed ones for 10 s, then healed. The
//!    `--fast` give-up schedule outlasts the window, so nobody is
//!    falsely expunged and the halves re-converge autonomously.
//! 3. **Crash** (`--kill-one`): once re-settled, the highest-indexed
//!    node is killed with SIGKILL mid-protocol. The supervisor restarts
//!    it (jittered exponential backoff, bounded budget) and the cluster
//!    must settle again with the rejoined node fully re-admitted.
//!
//! The oracle is [`audit_parts`] over control-channel snapshots: settled
//! means no missing same-part pointer, no cross-part pointer, no stale
//! pointer — the same §4.4-aware audit the simulator chaos scenarios
//! assert. A summary JSON (shim verdict counters, send retries, restarts
//! observed, convergence times) goes to stdout and `--out`.
//!
//! Exit codes: 0 settled, 1 not settled / lost nodes, 2 usage,
//! 77 loopback sockets unavailable (CI steps treat 77 as "skip").

use peerwindow_core::prelude::*;
use peerwindow_faults::FaultPlan;
use peerwindow_trace::json::{self, JVal};
use peerwindow_transport::ShimSpec;
use peerwindow_workload::ChurnConfig;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::process::{exit, Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

/// Sim-time (= wall-clock offset from the shared epoch) partition window.
const PART_FROM_US: u64 = 12_000_000;
const PART_UNTIL_US: u64 = 22_000_000;
/// Post-heal settle deadline: heal + worst-case §4.1 retry gap (~8 s on
/// the `--fast` schedule) + slack for the state exchange.
const HEAL_SETTLE_S: u64 = 42;
/// Extra settle budget after the kill/restart.
const REJOIN_SETTLE_S: u64 = 25;
/// Restarts allowed per node before the supervisor gives up on it.
const RESTART_BUDGET: u32 = 3;

struct Opts {
    nodes: u32,
    base_port: u16,
    plan: String,
    kill_one: bool,
    out: Option<String>,
    pwnode: String,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pwcluster [--nodes N] [--base-port P] [--plan partition-heal|none] \
         [--kill-one] [--out FILE] [--pwnode PATH] [--seed N]"
    );
    exit(2)
}

fn parse_args() -> Opts {
    let mut o = Opts {
        nodes: 8,
        base_port: 17_000,
        plan: "partition-heal".into(),
        kill_one: false,
        out: None,
        pwnode: String::new(),
        seed: 0xC1A05,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--nodes" => o.nodes = val().parse().unwrap_or_else(|_| usage()),
            "--base-port" => o.base_port = val().parse().unwrap_or_else(|_| usage()),
            "--plan" => o.plan = val(),
            "--kill-one" => o.kill_one = true,
            "--out" => o.out = Some(val()),
            "--pwnode" => o.pwnode = val(),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if o.nodes < 2 || !matches!(o.plan.as_str(), "partition-heal" | "none") {
        usage()
    }
    if o.pwnode.is_empty() {
        // Default: a sibling binary of this one (both live in target/…/).
        o.pwnode = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("pwnode")))
            .filter(|p| p.exists())
            .and_then(|p| p.to_str().map(String::from))
            .unwrap_or_else(|| {
                eprintln!("cannot find a pwnode binary next to pwcluster; pass --pwnode PATH");
                exit(2)
            });
    }
    o
}

/// SplitMix64 — supervisor-side jitter stream (restart backoff), seeded
/// so reruns schedule restarts identically relative to the crash.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

struct NodeProc {
    addr: SocketAddrV4,
    ctl: SocketAddrV4,
    child: Option<Child>,
    budget_bps: f64,
    restarts: u32,
    backoff_until: Option<Instant>,
    /// Set once the supervisor itself stopped or killed the process, so
    /// the restart path can tell a crash from an intended exit.
    expected_down: bool,
    abandoned: bool,
    last_snap: Option<Snap>,
}

/// One parsed `snap` control reply.
#[derive(Clone)]
struct Snap {
    id: NodeId,
    level: Level,
    active: bool,
    peers: Vec<NodeId>,
    shim_dropped: u64,
    shim_duplicated: u64,
    shim_delayed: u64,
    datagrams_out: u64,
    send_retries: u64,
    backoff_exhaustions: u64,
}

fn parse_id(s: &str) -> Option<NodeId> {
    u128::from_str_radix(s, 16).ok().map(NodeId)
}

fn parse_snap(text: &str) -> Option<Snap> {
    let v = json::parse(text).ok()?;
    let runtime = v.get("runtime")?;
    let counter = |name: &str| runtime.get(name).and_then(JVal::as_num).unwrap_or(0);
    Some(Snap {
        id: parse_id(v.get("id")?.as_str()?)?,
        level: Level::new(v.get("level")?.as_num()? as u8),
        active: v.get("active")?.as_num()? == 1,
        peers: match v.get("peers")? {
            JVal::Arr(items) => items
                .iter()
                .map(|p| p.as_str().and_then(parse_id))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        },
        shim_dropped: counter("shim_dropped"),
        shim_duplicated: counter("shim_duplicated"),
        shim_delayed: counter("shim_delayed"),
        datagrams_out: counter("datagrams_out"),
        send_retries: counter("send_retries"),
        backoff_exhaustions: counter("backoff_exhaustions"),
    })
}

struct Cluster {
    nodes: Vec<NodeProc>,
    pwnode: String,
    spec_path: std::path::PathBuf,
    seed: u64,
    jitter: u64,
    poll_sock: UdpSocket,
    restarts_observed: u32,
}

impl Cluster {
    fn spawn(&mut self, i: usize) -> std::io::Result<()> {
        let n = &self.nodes[i];
        let mut cmd = Command::new(&self.pwnode);
        cmd.arg("--listen")
            .arg(n.addr.to_string())
            .arg("--ctl")
            .arg(n.ctl.port().to_string())
            .arg("--fault-plan")
            .arg(&self.spec_path)
            .arg("--seed")
            .arg(self.seed.to_string())
            .arg("--budget")
            .arg(format!("{}", n.budget_bps))
            .arg("--info")
            .arg(format!("idx:{i}"))
            .arg("--fast")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if i > 0 {
            // Everyone (including a restarted node) rendezvouses off the
            // seed; its give-up schedule keeps it reachable throughout.
            cmd.arg("--bootstrap").arg(self.nodes[0].addr.to_string());
        }
        let child = cmd.spawn()?;
        let n = &mut self.nodes[i];
        n.child = Some(child);
        n.expected_down = false;
        Ok(())
    }

    /// One supervision pass: reap exited children and restart crashed
    /// ones once their jittered backoff expires.
    fn supervise(&mut self) {
        for i in 0..self.nodes.len() {
            let n = &mut self.nodes[i];
            if n.abandoned {
                continue;
            }
            if let Some(child) = &mut n.child {
                match child.try_wait() {
                    Ok(None) => continue, // still running
                    Ok(Some(_)) | Err(_) => n.child = None,
                }
                if n.expected_down {
                    continue;
                }
                // Crash detected: schedule a restart with jittered
                // exponential backoff (500 ms · 2^k, capped, ±25 %).
                if n.restarts >= RESTART_BUDGET {
                    n.abandoned = true;
                    eprintln!("node {i}: restart budget exhausted");
                    continue;
                }
                let base = (500u64 << n.restarts).min(4_000);
                let jit = splitmix(&mut self.jitter) % (base / 2 + 1);
                let wait = base - base / 4 + jit;
                n.restarts += 1;
                self.restarts_observed += 1;
                n.backoff_until = Some(Instant::now() + Duration::from_millis(wait));
                eprintln!("node {i}: down, restart #{} in {wait} ms", n.restarts);
            } else if n.backoff_until.is_some_and(|t| Instant::now() >= t) {
                n.backoff_until = None;
                if let Err(e) = self.spawn(i) {
                    eprintln!("node {i}: respawn failed: {e}");
                    self.nodes[i].abandoned = true;
                }
            }
        }
    }

    /// Polls every live node's control port; updates `last_snap`.
    fn poll(&mut self) {
        let mut buf = [0u8; 4096];
        for n in &mut self.nodes {
            if n.child.is_none() {
                continue;
            }
            if self.poll_sock.send_to(b"snap", n.ctl).is_err() {
                continue;
            }
            // One request, one reply; late replies to a previous poll are
            // drained by source-address mismatch.
            let deadline = Instant::now() + Duration::from_millis(300);
            while Instant::now() < deadline {
                match self.poll_sock.recv_from(&mut buf) {
                    Ok((len, from)) if from == std::net::SocketAddr::V4(n.ctl) => {
                        if let Some(s) = std::str::from_utf8(&buf[..len]).ok().and_then(parse_snap)
                        {
                            n.last_snap = Some(s);
                        }
                        break;
                    }
                    Ok(_) => continue, // stale reply from another node
                    Err(_) => break,   // timeout
                }
            }
        }
    }

    /// The settle oracle over the latest snapshots: every node running,
    /// active, and `audit_parts` clean. Returns the audit when it holds.
    fn settled(&self) -> Option<PartAudit> {
        let mut views = Vec::new();
        for n in &self.nodes {
            if n.child.is_none() || n.abandoned {
                return None;
            }
            let s = n.last_snap.as_ref()?;
            if !s.active {
                return None;
            }
            views.push((NodeIdentity::new(s.id, s.level), s.peers.clone()));
        }
        let audit = audit_parts(&views);
        audit.is_settled().then_some(audit)
    }

    fn stop_all(&mut self) {
        for n in &mut self.nodes {
            if n.child.is_some() {
                n.expected_down = true;
                let _ = self.poll_sock.send_to(b"stop", n.ctl);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        for n in &mut self.nodes {
            if let Some(child) = &mut n.child {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        _ if Instant::now() >= deadline => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        _ => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
                n.child = None;
            }
        }
    }
}

fn summary_json(
    o: &Opts,
    c: &Cluster,
    converged: bool,
    audit: Option<PartAudit>,
    joined_ms: Option<u64>,
    settled_ms: Option<u64>,
) -> String {
    let sum = |f: fn(&Snap) -> u64| -> u64 {
        c.nodes
            .iter()
            .filter_map(|n| n.last_snap.as_ref())
            .map(f)
            .sum()
    };
    let audit = audit.unwrap_or_default();
    let mut out = format!(
        "{{\"nodes\":{},\"plan\":\"{}\",\"seed\":{},\"kill_one\":{},\"converged\":{},\
         \"restarts_observed\":{},\"joined_ms\":{},\"settled_ms\":{},\
         \"audit\":{{\"parts\":{},\"missing\":{},\"cross_part\":{},\"stale\":{}}},\
         \"shim\":{{\"dropped\":{},\"duplicated\":{},\"delayed\":{}}},\
         \"runtime\":{{\"datagrams_out\":{},\"send_retries\":{},\"backoff_exhaustions\":{}}},\
         \"per_node\":[",
        o.nodes,
        o.plan,
        o.seed,
        u8::from(o.kill_one),
        u8::from(converged),
        c.restarts_observed,
        joined_ms.unwrap_or(0),
        settled_ms.unwrap_or(0),
        audit.parts,
        audit.missing,
        audit.cross_part,
        audit.stale,
        sum(|s| s.shim_dropped),
        sum(|s| s.shim_duplicated),
        sum(|s| s.shim_delayed),
        sum(|s| s.datagrams_out),
        sum(|s| s.send_retries),
        sum(|s| s.backoff_exhaustions),
    );
    for (i, n) in c.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match &n.last_snap {
            Some(s) => out.push_str(&format!(
                "{{\"id\":\"{}\",\"level\":{},\"peers\":{},\"restarts\":{}}}",
                s.id,
                s.level.value(),
                s.peers.len(),
                n.restarts
            )),
            None => out.push_str(&format!("{{\"restarts\":{}}}", n.restarts)),
        }
    }
    out.push_str("]}");
    out
}

fn main() {
    let o = parse_args();
    // Socket availability probe: every node port and ctl port must bind,
    // or the environment cannot host the cluster (exit 77 = CI skip).
    let mut probes = Vec::new();
    for i in 0..o.nodes as u16 {
        for port in [o.base_port + i, o.base_port + 500 + i] {
            match UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port)) {
                Ok(s) => probes.push(s),
                Err(e) => {
                    eprintln!("cannot bind 127.0.0.1:{port}: {e}; skipping");
                    exit(77);
                }
            }
        }
    }
    drop(probes);

    // Shared shim spec: roster in index order, epoch = now, plan windows
    // relative to it. Every pwnode judges its own sends from this file.
    let epoch_unix_us = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let roster: Vec<SocketAddrV4> = (0..o.nodes as u16)
        .map(|i| SocketAddrV4::new(Ipv4Addr::LOCALHOST, o.base_port + i))
        .collect();
    let plan = match o.plan.as_str() {
        "partition-heal" => FaultPlan::reliable(o.seed ^ 0xC_4A05).with_partition(
            PART_FROM_US,
            PART_UNTIL_US,
            2,
            &[1],
        ),
        _ => FaultPlan::reliable(o.seed ^ 0xC_4A05),
    };
    let spec = ShimSpec {
        plan,
        epoch_unix_us,
        roster: roster.clone(),
    };
    let spec_path = std::env::temp_dir().join(format!("pwcluster-{}.shim", std::process::id()));
    if let Err(e) = std::fs::write(&spec_path, spec.to_text()) {
        eprintln!("cannot write shim spec {}: {e}", spec_path.display());
        exit(1);
    }

    // Per-node bandwidth budgets from the workload model, floored so the
    // fast-cadence control traffic never starves level 0 entirely.
    let churn = ChurnConfig::paper_common(o.nodes as usize, o.seed);
    let budgets: Vec<f64> = churn
        .initial_population()
        .into_iter()
        .map(|(spec, _)| spec.threshold_bps.max(200_000.0))
        .collect();

    let poll_sock = UdpSocket::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("cannot bind poll socket: {e}");
        exit(77)
    });
    poll_sock
        .set_read_timeout(Some(Duration::from_millis(300)))
        .expect("read timeout");
    let mut cluster = Cluster {
        nodes: (0..o.nodes as usize)
            .map(|i| NodeProc {
                addr: roster[i],
                ctl: SocketAddrV4::new(Ipv4Addr::LOCALHOST, o.base_port + 500 + i as u16),
                child: None,
                budget_bps: budgets[i % budgets.len()],
                restarts: 0,
                backoff_until: None,
                expected_down: true,
                abandoned: false,
                last_snap: None,
            })
            .collect(),
        pwnode: o.pwnode.clone(),
        spec_path: spec_path.clone(),
        seed: o.seed,
        jitter: o.seed ^ 0x5B_00F,
        poll_sock,
        restarts_observed: 0,
    };

    // Join wave: seed first, then staggered joiners.
    let start = Instant::now();
    for i in 0..o.nodes as usize {
        if let Err(e) = cluster.spawn(i) {
            eprintln!("cannot launch pwnode: {e}");
            cluster.stop_all();
            let _ = std::fs::remove_file(&spec_path);
            exit(1);
        }
        std::thread::sleep(Duration::from_millis(if i == 0 { 400 } else { 150 }));
    }

    let mut joined_ms = None;
    let mut settled_ms = None;
    let mut killed = false;
    let mut final_audit = None;
    let deadline =
        start + Duration::from_secs(HEAL_SETTLE_S + if o.kill_one { REJOIN_SETTLE_S } else { 0 });
    while Instant::now() < deadline {
        cluster.supervise();
        cluster.poll();
        let audit = cluster.settled();
        let elapsed = start.elapsed();
        if let Some(a) = audit {
            if joined_ms.is_none() && elapsed < Duration::from_micros(PART_FROM_US) {
                joined_ms = Some(elapsed.as_millis() as u64);
                eprintln!("joined and settled at {} ms", elapsed.as_millis());
            }
            let past_faults = o.plan == "none" || elapsed > Duration::from_micros(PART_UNTIL_US);
            if past_faults && o.kill_one && !killed {
                // Settled after the heal: now crash the highest-indexed
                // node mid-protocol and let supervision bring it back.
                killed = true;
                let victim = o.nodes as usize - 1;
                if let Some(child) = &mut cluster.nodes[victim].child {
                    eprintln!("kill -9 node {victim} at {} ms", elapsed.as_millis());
                    let _ = child.kill();
                }
                // Its old snapshot no longer reflects a live process.
                cluster.nodes[victim].last_snap = None;
                continue;
            }
            if past_faults && (!o.kill_one || cluster.restarts_observed > 0) {
                settled_ms = Some(elapsed.as_millis() as u64);
                final_audit = Some(a);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }

    let converged = final_audit.is_some();
    cluster.stop_all();
    let _ = std::fs::remove_file(&spec_path);
    let summary = summary_json(&o, &cluster, converged, final_audit, joined_ms, settled_ms);
    println!("{summary}");
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, &summary) {
            eprintln!("cannot write {path}: {e}");
        }
    }
    if !converged {
        eprintln!("cluster did not settle");
        exit(1);
    }
}
