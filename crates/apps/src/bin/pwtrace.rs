//! `pwtrace` — record and query PeerWindow structured trace logs.
//!
//! Subcommands:
//!
//! * `record`    — run a deterministic traced simulation, write JSONL
//! * `filter`    — select records by node / time range / kind / class
//! * `tree`      — reconstruct a multicast dissemination tree
//! * `chrome`    — convert a JSONL log to Chrome `trace_event` JSON
//! * `bandwidth` — per-message-class traffic table
//! * `diff`      — compare two logs (exit 1 when they differ)
//!
//! The `record` scenario is seeded and runs on the deterministic
//! parallel engine, so the same arguments always produce a byte-identical
//! log — including across `--shards` values.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::SimTime;
use peerwindow_sim::ParallelFullSim;
use peerwindow_trace::{chrome, jsonl, query, CauseId, TraceRecord};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: pwtrace <subcommand>\n\
         \n\
         pwtrace record [--out FILE] [--shards N] [--nodes N] [--until-s S] [--seed N] [--chrome FILE]\n\
         pwtrace filter FILE [--node HEX] [--from-us N] [--to-us N] [--kind NAME] [--class NAME]\n\
         pwtrace tree FILE [--cause HEX#SEQ]\n\
         pwtrace chrome FILE --out FILE\n\
         pwtrace bandwidth FILE\n\
         pwtrace diff FILE_A FILE_B"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "record" => cmd_record(&args[1..]),
        "filter" => cmd_filter(&args[1..]),
        "tree" => cmd_tree(&args[1..]),
        "chrome" => cmd_chrome(&args[1..]),
        "bandwidth" => cmd_bandwidth(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        _ => usage(),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(v) = v else {
        eprintln!("{flag} needs a value");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        exit(2)
    })
}

fn load(path: &str) -> Vec<TraceRecord> {
    let doc = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1)
    });
    jsonl::parse_string(&doc).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1)
    })
}

/// Parses `HEX#SEQ` (the `cause` wire form, e.g. `0123…4455#1`).
fn parse_cause(s: &str) -> CauseId {
    let bad = || -> ! {
        eprintln!("--cause wants HEX#SEQ, got {s:?}");
        exit(2)
    };
    let Some((hex, seq)) = s.split_once('#') else {
        bad()
    };
    let subject = u128::from_str_radix(hex, 16).unwrap_or_else(|_| bad());
    let seq = seq.parse().unwrap_or_else(|_| bad());
    CauseId { subject, seq }
}

/// The recording scenario: one seed node, staggered joiners bootstrapping
/// off it, two crashes and an info change mid-run (the same shape as the
/// sim crate's determinism tests).
fn cmd_record(args: &[String]) {
    let mut out = "trace.jsonl".to_string();
    let mut chrome_out: Option<String> = None;
    let mut shards = 1usize;
    let mut nodes = 48u32;
    let mut until_s = 80u64;
    let mut seed = 7u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--chrome" => chrome_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--shards" => shards = parse_num("--shards", it.next()),
            "--nodes" => nodes = parse_num("--nodes", it.next()),
            "--until-s" => until_s = parse_num("--until-s", it.next()),
            "--seed" => seed = parse_num("--seed", it.next()),
            _ => usage(),
        }
    }
    if shards == 0 || nodes < 2 {
        eprintln!("need --shards >= 1 and --nodes >= 2");
        exit(2);
    }
    let protocol = ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = ParallelFullSim::new(shards, nodes as usize, protocol, 20_000, 1_000, seed);
    sim.enable_tracing(true);
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..nodes {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(400 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    if nodes > 10 {
        sim.crash(SimTime::from_secs(30), 5);
        sim.crash(SimTime::from_secs(31), 9);
        sim.command(
            SimTime::from_secs(35),
            3,
            Command::ChangeInfo(Bytes::from_static(b"v2")),
        );
    }
    sim.run_until(SimTime::from_secs(until_s));
    let log = sim.take_trace();
    std::fs::write(&out, jsonl::to_string(&log)).unwrap_or_else(|e| {
        eprintln!("{out}: {e}");
        exit(1)
    });
    println!(
        "{}: {} records from {} nodes over {}s ({} shards, fingerprint {:016x})",
        out,
        log.len(),
        nodes,
        until_s,
        shards,
        sim.fingerprint()
    );
    let mut reg = peerwindow_trace::CounterRegistry::new();
    sim.sample_metrics(&mut reg);
    print!("{}", peerwindow_metrics::counter_table(&reg).to_markdown());
    print!("{}", peerwindow_metrics::gauge_table(&reg).to_markdown());
    let bw = query::bandwidth_by_class(&log);
    print!("{}", peerwindow_metrics::bandwidth_table(&bw).to_markdown());
    if let Some(path) = chrome_out {
        std::fs::write(&path, chrome::export(&log)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        });
        println!("{path}: chrome trace written (open in chrome://tracing)");
    }
}

fn cmd_filter(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut f = query::Filter::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--node" => {
                let v: &String = it.next().unwrap_or_else(|| usage());
                f.node = Some(u128::from_str_radix(v, 16).unwrap_or_else(|_| {
                    eprintln!("--node wants a hex id, got {v:?}");
                    exit(2)
                }));
            }
            "--from-us" => f.from_us = Some(parse_num("--from-us", it.next())),
            "--to-us" => f.to_us = Some(parse_num("--to-us", it.next())),
            "--kind" => f.kind = it.next().cloned(),
            "--class" => f.class = it.next().cloned(),
            "--cause" => f.cause = Some(parse_cause(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let records = load(path);
    let kept = query::filter(&records, &f);
    print!("{}", jsonl::to_string(&kept));
    eprintln!("{} of {} records", kept.len(), records.len());
}

fn cmd_tree(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut cause = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cause" => cause = Some(parse_cause(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let records = load(path);
    let cause = cause.unwrap_or_else(|| {
        // Default to the busiest multicast in the log.
        let ranked = query::causes_by_hops(&records);
        let Some((c, _)) = ranked.first() else {
            eprintln!("no multicast hops in {path}");
            exit(1)
        };
        *c
    });
    let tree = query::reconstruct_tree(&records, cause);
    println!("cause     {:032x}#{}", tree.cause.subject, tree.cause.seq);
    match tree.root {
        Some(r) => println!("root      {r:032x}"),
        None => println!("root      (not in log)"),
    }
    println!("receivers {}", tree.receivers());
    println!("depth     {}", tree.max_depth());
    println!("root-deg  {}", tree.root_out_degree());
    println!("redirects {}", tree.redirects);
    for h in &tree.hops {
        println!(
            "  {:>10}us  {:032x} -> {:032x}  step {}",
            h.at_us, h.parent, h.child, h.step
        );
    }
}

fn cmd_chrome(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut out = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };
    let records = load(path);
    std::fs::write(&out, chrome::export(&records)).unwrap_or_else(|e| {
        eprintln!("{out}: {e}");
        exit(1)
    });
    println!("{out}: {} events (open in chrome://tracing)", records.len());
}

fn cmd_bandwidth(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let records = load(path);
    let bw = query::bandwidth_by_class(&records);
    print!("{}", peerwindow_metrics::bandwidth_table(&bw).to_markdown());
}

fn cmd_diff(args: &[String]) {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        usage()
    };
    let ra = load(a);
    let rb = load(b);
    let diffs = query::diff(&ra, &rb);
    if diffs.is_empty() {
        println!("identical: {} records", ra.len());
        return;
    }
    for line in diffs.iter().take(20) {
        println!("{line}");
    }
    if diffs.len() > 20 {
        println!("... and {} more", diffs.len() - 20);
    }
    exit(1)
}
