//! `pwchaos` — named, seeded fault-injection scenarios with convergence
//! assertions.
//!
//! Each scenario builds a deterministic parallel-engine world, installs a
//! [`FaultPlan`], runs it past the adverse window, and asserts the
//! protocol recovered: peer lists settle (no missing / stale / cross-part
//! entries) once the network heals. The final state fingerprint is
//! printed; because fault verdicts are judged at send time in the
//! sender's shard, the same scenario + seed prints the same fingerprint
//! at any `--shards` value — CI diffs a 1-shard against a 4-shard run.
//!
//! Exit status: 0 when every assertion holds, 1 on an assertion failure,
//! 2 on a usage error.
//!
//! Scenarios:
//!
//! * `burst-loss-storm`     — Gilbert–Elliott burst loss on every link
//!   for a mid-run window, plus jitter.
//! * `stub-partition-heal`  — half the domains isolated for a window,
//!   then healed; asserts the partition-aware settle audit.
//! * `crash-storm`          — a burst of crashes under uniform loss.
//! * `flappy-link`          — a link to the bootstrap node black-holes
//!   one-way, on and off, with duplication on every link.

use bytes::Bytes;
use peerwindow_core::prelude::*;
use peerwindow_des::SimTime;
use peerwindow_faults::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};
use peerwindow_sim::ParallelFullSim;
use peerwindow_trace::jsonl;
use std::process::exit;

const SCENARIOS: &[&str] = &[
    "burst-loss-storm",
    "stub-partition-heal",
    "crash-storm",
    "flappy-link",
];

fn usage() -> ! {
    eprintln!(
        "usage: pwchaos <scenario> [--shards N] [--nodes N] [--seed N] [--trace FILE] [--fingerprint-only]\n\
         \n\
         scenarios: {}\n\
         \n\
         pwchaos list    — print the scenario names, one per line",
        SCENARIOS.join(", ")
    );
    exit(2)
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(v) = v else {
        eprintln!("{flag} needs a value");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        exit(2)
    })
}

struct Opts {
    scenario: String,
    shards: usize,
    nodes: u32,
    seed: u64,
    trace_out: Option<String>,
    fingerprint_only: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else { usage() };
    if first == "list" {
        for s in SCENARIOS {
            println!("{s}");
        }
        return;
    }
    let mut opts = Opts {
        scenario: first.clone(),
        shards: 1,
        nodes: 48,
        seed: 7,
        trace_out: None,
        fingerprint_only: false,
    };
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => opts.shards = parse_num("--shards", it.next()),
            "--nodes" => opts.nodes = parse_num("--nodes", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--trace" => opts.trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--fingerprint-only" => opts.fingerprint_only = true,
            _ => usage(),
        }
    }
    if opts.shards == 0 || opts.nodes < 8 {
        eprintln!("need --shards >= 1 and --nodes >= 8");
        exit(2);
    }
    if !SCENARIOS.contains(&opts.scenario.as_str()) {
        eprintln!("unknown scenario {:?}", opts.scenario);
        usage()
    }
    run(&opts)
}

/// Per-scenario protocol tuning on top of the shared baseline.
///
/// `stub-partition-heal` is the §4.1-hardening showcase: with nine
/// backed-off probe attempts the retry schedule (0.4 s doubling, 30 s
/// cap) spans ≈ 80 s — longer than the 30 s outage — so no node is
/// falsely expunged and the halves re-converge on their own. At the
/// default three attempts the halves fully purge each other in ~3 s and
/// no multicast path can ever bridge them again (refresh audiences are
/// computed from the purged lists): total partitions are only
/// autonomically survivable when failure detection outlasts them.
fn protocol_for(scenario: &str) -> ProtocolConfig {
    let base = ProtocolConfig {
        probe_interval_us: 2_000_000,
        rpc_timeout_us: 400_000,
        processing_delay_us: 10_000,
        bandwidth_window_us: 8_000_000,
        ..ProtocolConfig::default()
    };
    match scenario {
        "stub-partition-heal" => ProtocolConfig {
            max_attempts: 9,
            ..base
        },
        // Survivors must tell real crashes from loss-streaks: five
        // attempts put the per-round false-detection odds near zero at
        // 15% loss while a crashed peer is still declared within ~13 s.
        "crash-storm" => ProtocolConfig {
            max_attempts: 5,
            ..base
        },
        // An asymmetric blackhole erases the victim from every list, and
        // multicast forwarding never routes to a node nobody lists — the
        // §4.5 reconcile anti-entropy (periodic Download + re-announce)
        // is the designed repair channel, so the scenario exercises it.
        "flappy-link" => ProtocolConfig {
            reconcile_interval_us: 60_000_000,
            ..base
        },
        _ => base,
    }
}

/// Builds the base world: one seed node, staggered joiners bootstrapping
/// off it (the same shape as the determinism tests, so results are
/// comparable across tools).
fn base_world(opts: &Opts) -> ParallelFullSim {
    let protocol = protocol_for(&opts.scenario);
    let mut sim = ParallelFullSim::new(
        opts.shards,
        opts.nodes as usize,
        protocol,
        20_000,
        1_000,
        opts.seed,
    );
    if opts.trace_out.is_some() {
        sim.enable_tracing(true);
    }
    let seed_id = NodeId(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    sim.start_node(SimTime::ZERO, 0, seed_id, 1e9, Bytes::new(), None);
    let boot = Target {
        id: seed_id,
        addr: Addr(0),
        level: Level::TOP,
    };
    for k in 1..opts.nodes {
        let id = NodeId((k as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_0C4A_2B8E_D1A3) | 1);
        sim.start_node(
            SimTime::from_millis(400 * k as u64),
            k,
            id,
            1e9,
            Bytes::new(),
            Some(boot),
        );
    }
    sim
}

/// The adverse window every scenario uses: faults bite after the join
/// wave and heal at 60s. The run then measures the recovered state at
/// 700s — past the 10-minute default §4.6 self-refresh period, the last
/// repair channel for peers falsely expunged during the storm (probe
/// failure → obituary; the refresh re-admits them everywhere).
const STORM_FROM_US: u64 = 30_000_000;
const STORM_UNTIL_US: u64 = 60_000_000;
const RUN_UNTIL_S: u64 = 700;

fn plan_for(scenario: &str, seed: u64) -> FaultPlan {
    // Fault streams get their own seed lane so scenario seed 7 and
    // engine seed 7 don't share draws.
    let fseed = seed ^ 0xC_4A05;
    match scenario {
        "burst-loss-storm" => FaultPlan::reliable(fseed)
            .with_rule(FaultRule {
                from_us: STORM_FROM_US,
                until_us: STORM_UNTIL_US,
                links: LinkSel::all(),
                condition: Condition::GilbertElliott {
                    p_enter_bad: 0.02,
                    p_exit_bad: 0.10,
                    loss_good: 0.01,
                    loss_bad: 0.60,
                },
            })
            .with_rule(FaultRule {
                from_us: STORM_FROM_US,
                until_us: STORM_UNTIL_US,
                links: LinkSel::all(),
                condition: Condition::Jitter {
                    max_extra_us: 40_000,
                },
            }),
        "stub-partition-heal" => {
            // Odd domains cut off from even ones for the storm window.
            FaultPlan::reliable(fseed).with_partition(STORM_FROM_US, STORM_UNTIL_US, 4, &[1, 3])
        }
        "crash-storm" => FaultPlan::reliable(fseed).with_rule(FaultRule {
            from_us: STORM_FROM_US,
            until_us: STORM_UNTIL_US,
            links: LinkSel::all(),
            condition: Condition::Loss { p: 0.15 },
        }),
        "flappy-link" => {
            // The bootstrap node's *inbound* link black-holes one-way in
            // three 5-second flaps (asymmetric failure: it can send but
            // hears nothing), while every link duplicates 10% of
            // datagrams (stresses idempotent RPC handling).
            let mut plan = FaultPlan::reliable(fseed).with_rule(FaultRule {
                from_us: 0,
                until_us: u64::MAX,
                links: LinkSel::all(),
                condition: Condition::Duplicate {
                    p: 0.10,
                    gap_us: 5_000,
                },
            });
            for flap in 0..3u64 {
                let from = STORM_FROM_US + flap * 10_000_000;
                plan = plan.with_rule(FaultRule {
                    from_us: from,
                    until_us: from + 5_000_000,
                    links: LinkSel::one_way(NodeSel::All, NodeSel::One(0)),
                    condition: Condition::Blackhole,
                });
            }
            plan
        }
        _ => unreachable!("scenario validated in main"),
    }
}

fn run(opts: &Opts) {
    let mut sim = base_world(opts);
    sim.set_fault_plan(&plan_for(&opts.scenario, opts.seed));
    if opts.scenario == "crash-storm" {
        // Five crashes spread over the loss window; survivors must purge
        // the dead entries despite losing a quarter of their probes.
        for (i, actor) in [5u32, 9, 17, 23, 31].iter().enumerate() {
            sim.crash(
                SimTime::from_micros(STORM_FROM_US + 2_000_000 * (i as u64 + 1)),
                *actor,
            );
        }
    }
    sim.run_until(SimTime::from_secs(RUN_UNTIL_S));

    let fp = sim.fingerprint();
    if opts.fingerprint_only {
        println!("{fp:016x}");
    }
    let c = sim.fault_counters();
    let (correct, missing, stale) = sim.accuracy();
    let audit = sim.part_audit();
    if !opts.fingerprint_only {
        println!(
            "{}: {} nodes, {} shards, seed {} → fingerprint {fp:016x}",
            opts.scenario, opts.nodes, opts.shards, opts.seed
        );
        println!(
            "faults: judged {} dropped {} duplicated {} jittered {}",
            c.judged, c.dropped, c.duplicated, c.jittered
        );
        println!("accuracy: correct {correct} missing {missing} stale {stale}");
        println!(
            "parts audit: parts {} required {} missing {} cross_part {} stale {}",
            audit.parts, audit.required, audit.missing, audit.cross_part, audit.stale
        );
    }
    if let Some(path) = &opts.trace_out {
        let log = sim.take_trace();
        std::fs::write(path, jsonl::to_string(&log)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        });
        if !opts.fingerprint_only {
            println!("{path}: {} records", log.len());
        }
    }

    if std::env::var_os("PWCHAOS_DEBUG").is_some() {
        let truth = sim.ground_truth();
        for (actor, m) in sim.machines() {
            if !m.is_active() {
                continue;
            }
            let scope = m.eigenstring();
            for t in &truth {
                if t.id != m.id() && scope.contains(t.id) && !m.peers().contains(t.id) {
                    eprintln!("debug: actor {actor} missing {}", t.id);
                }
            }
        }
    }

    // Convergence assertions: one §4.6 refresh period after the last
    // fault clears, the window protocol must have fully settled.
    let mut failed = false;
    let mut check = |name: &str, ok: bool| {
        if !ok {
            eprintln!("FAIL: {name}");
            failed = true;
        }
    };
    check("fault layer judged datagrams", c.judged > 0);
    match opts.scenario.as_str() {
        "burst-loss-storm" => {
            check("storm dropped datagrams", c.dropped > 0);
            check("jitter was applied", c.jittered > 0);
        }
        "stub-partition-heal" => check("partition dropped datagrams", c.dropped > 0),
        "crash-storm" => check("loss dropped datagrams", c.dropped > 0),
        "flappy-link" => {
            check("flaps dropped datagrams", c.dropped > 0);
            check("duplicates were injected", c.duplicated > 0);
        }
        _ => unreachable!(),
    }
    let expected_live = if opts.scenario == "crash-storm" {
        opts.nodes as usize - 5
    } else {
        opts.nodes as usize
    };
    check(
        "every started node is live",
        sim.live_count() == expected_live,
    );
    check("no peer-list entries missing", missing == 0);
    check("no stale peer-list entries", stale == 0);
    check("partition-aware settle audit", audit.is_settled());
    if failed {
        eprintln!("{}: NOT SETTLED", opts.scenario);
        exit(1);
    }
    if !opts.fingerprint_only {
        println!("{}: settled ✔", opts.scenario);
    }
}
