//! `pwstat` — render runtime-metrics reports from the command line.
//!
//! Input is the JSONL written by `perfbaseline --profile-out` (or any
//! [`RunReport::to_jsonl`] export): one self-contained record stream per
//! run, ending in `{"rec":"end"}`. Subcommands:
//!
//! * `render FILE [--top N] [--assert-fractions]` — the human view: one
//!   attribution table per run (where the wall-clock went, by group),
//!   the top-N busiest shards, and the recorded histograms' quantiles.
//!   `--assert-fractions` additionally exits 1 unless every run's
//!   attribution fractions sum to ~1.0 — the CI coherence check.
//! * `prom FILE` — Prometheus text exposition of every run's counters
//!   and time attribution, for scraping or pushgateway upload.
//! * `roundtrip FILE` — strict parse → re-export → byte-compare. Exits 1
//!   on any mismatch; guards the exporter/parser pair against drift.
//! * `cluster FILE [--prom]` — renders a `pwcluster` run summary (the
//!   JSON it writes to `--out`): verdict/retry/restart counters, the
//!   partition-aware audit, and the per-node table. `--prom` emits the
//!   same counters as Prometheus text exposition instead.
//!
//! Exit status: 0 on success, 1 on a failed assertion or round-trip
//! mismatch, 2 on a usage or parse error.
//!
//! Reading a report: a high `barrier_wait` fraction with a low
//! `execute` fraction means the run is synchronization-bound (shards
//! too small, or load imbalance parking fast workers at the window
//! barrier); a dominant `execute` fraction means the run is
//! compute-bound and more shards will help. See EXPERIMENTS.md.

use peerwindow_metrics::runtime::{parse_jsonl, prometheus, RunReport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pwstat <render FILE [--top N] [--assert-fractions] | prom FILE | \
         roundtrip FILE | cluster FILE [--prom]>"
    );
    ExitCode::from(2)
}

/// Renders a `pwcluster --out` summary. Returns 2 on a parse error, 1 if
/// the summary records a non-converged run, 0 otherwise.
fn cluster(path: &str, prom: bool) -> ExitCode {
    use peerwindow_trace::json::{self, JVal};
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let v = match json::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let num = |key: &str| v.get(key).and_then(JVal::as_num).unwrap_or(0);
    let nested = |obj: &str, key: &str| {
        v.get(obj)
            .and_then(|o| o.get(key))
            .and_then(JVal::as_num)
            .unwrap_or(0)
    };
    let converged = num("converged") == 1;
    if prom {
        let mut out = String::new();
        let mut counter = |name: &str, value: u64| {
            out.push_str(&format!(
                "# TYPE peerwindow_cluster_{name} gauge\npeerwindow_cluster_{name} {value}\n"
            ));
        };
        counter("nodes", num("nodes"));
        counter("converged", num("converged"));
        counter("restarts_observed", num("restarts_observed"));
        counter("settled_ms", num("settled_ms"));
        for k in ["parts", "missing", "cross_part", "stale"] {
            counter(&format!("audit_{k}"), nested("audit", k));
        }
        for k in ["dropped", "duplicated", "delayed"] {
            counter(&format!("shim_{k}"), nested("shim", k));
        }
        for k in ["datagrams_out", "send_retries", "backoff_exhaustions"] {
            counter(k, nested("runtime", k));
        }
        print!("{out}");
    } else {
        let plan = v.get("plan").and_then(JVal::as_str).unwrap_or("?");
        println!(
            "cluster run: {} node(s), plan {plan}, seed {} — {}",
            num("nodes"),
            num("seed"),
            if converged { "SETTLED" } else { "NOT SETTLED" },
        );
        println!(
            "  joined {} ms, settled {} ms, restarts observed {}",
            num("joined_ms"),
            num("settled_ms"),
            num("restarts_observed"),
        );
        println!(
            "  audit: parts {}  missing {}  cross-part {}  stale {}",
            nested("audit", "parts"),
            nested("audit", "missing"),
            nested("audit", "cross_part"),
            nested("audit", "stale"),
        );
        println!(
            "  shim verdicts: dropped {}  duplicated {}  delayed {}",
            nested("shim", "dropped"),
            nested("shim", "duplicated"),
            nested("shim", "delayed"),
        );
        println!(
            "  runtime: datagrams out {}  send retries {}  backoff exhaustions {}",
            nested("runtime", "datagrams_out"),
            nested("runtime", "send_retries"),
            nested("runtime", "backoff_exhaustions"),
        );
        if let Some(JVal::Arr(nodes)) = v.get("per_node") {
            println!(
                "  {:<34} {:>5} {:>6} {:>9}",
                "node", "level", "peers", "restarts"
            );
            for n in nodes {
                println!(
                    "  {:<34} {:>5} {:>6} {:>9}",
                    n.get("id").and_then(JVal::as_str).unwrap_or("(down)"),
                    n.get("level").and_then(JVal::as_num).unwrap_or(0),
                    n.get("peers").and_then(JVal::as_num).unwrap_or(0),
                    n.get("restarts").and_then(JVal::as_num).unwrap_or(0),
                );
            }
        }
    }
    if converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn load(path: &str) -> Result<(String, Vec<RunReport>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let reports = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((text, reports))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(path) = args.get(1) else {
        return usage();
    };
    if cmd == "cluster" {
        return match args.get(2).map(String::as_str) {
            None => cluster(path, false),
            Some("--prom") if args.len() == 3 => cluster(path, true),
            _ => usage(),
        };
    }
    let (text, reports) = match load(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "render" => {
            let mut top = 4usize;
            let mut assert_fractions = false;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => return usage(),
                    },
                    "--assert-fractions" => assert_fractions = true,
                    _ => return usage(),
                }
            }
            let mut bad = 0usize;
            for r in &reports {
                print!("{}", r.render(top));
                println!();
                if assert_fractions && r.total_time_ns() > 0 {
                    let sum: f64 = r.attribution().iter().map(|(_, f)| f).sum();
                    if (sum - 1.0).abs() > 1e-6 {
                        eprintln!(
                            "error: run '{}': attribution fractions sum to {sum}, expected 1.0",
                            r.name
                        );
                        bad += 1;
                    }
                }
            }
            if assert_fractions {
                let timed = reports.iter().filter(|r| r.total_time_ns() > 0).count();
                if timed == 0 {
                    eprintln!("error: no run in {path} carries wall-clock attribution");
                    return ExitCode::from(1);
                }
                if bad > 0 {
                    return ExitCode::from(1);
                }
                eprintln!("fractions ok: {timed} run(s) each sum to 1.0");
            }
            ExitCode::SUCCESS
        }
        "prom" => {
            if args.len() != 2 {
                return usage();
            }
            print!("{}", prometheus(&reports));
            ExitCode::SUCCESS
        }
        "roundtrip" => {
            if args.len() != 2 {
                return usage();
            }
            let mut again = String::new();
            for r in &reports {
                again.push_str(&r.to_jsonl());
            }
            if again != text {
                eprintln!(
                    "error: {path}: re-export differs from input ({} vs {} bytes) — \
                     exporter/parser drift",
                    again.len(),
                    text.len()
                );
                return ExitCode::from(1);
            }
            eprintln!(
                "roundtrip ok: {} report(s), {} bytes",
                reports.len(),
                text.len()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
