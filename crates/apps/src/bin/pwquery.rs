//! pwquery — the serving-layer benchmark (PR 10's `BENCH_PR10.json`).
//!
//! Builds an N = 100k..1M-pointer peer list from the seeded §5.1 churn
//! workload, publishes it through the lock-free snapshot path, and
//! hammers the [`QueryEngine`] from `--threads` query threads while a
//! churn thread keeps mutating and re-publishing the list at full speed.
//! Records, per query class, a `query_qps_*` entry, plus the
//! snapshot-publication overhead on mutation throughput and the prepare
//! cost per epoch:
//!
//! ```text
//! pwquery [--n N] [--secs S] [--threads T] [--seed X] [--batch B]
//!         [--out PATH] [--quick]
//! ```
//!
//! * `--n` — steady-state population (default 100 000).
//! * `--secs` — measurement window per query class (default 3).
//! * `--threads` — concurrent query threads (default 4).
//! * `--batch` — churn ops per snapshot publication (default 256; the
//!   generation gate coalesces, publication is per batch).
//! * `--quick` — CI smoke scale: N = 10 000, 1 s windows.
//!
//! Query classes: `partners_eq` (string-index lookup), `k_lightest`
//! (presorted numeric column), `strongest` (level order), and the two
//! bloom holder paths — `holders_batch` (one precomputed probe across
//! all filters, zero-copy) vs `holders_single` (the old per-pointer
//! deserialize-and-hash path) — so the batching win is measured, not
//! asserted.

use bytes::Bytes;
use peerwindow_apps::query::{QueryEngine, QueryPlan};
use peerwindow_apps::{Bloom, InfoMap};
use peerwindow_core::prelude::*;
use peerwindow_workload::ChurnConfig;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

const OSES: [&str; 5] = ["linux", "windows", "macos", "bsd", "solaris"];
/// The document every holders query probes for; ~1 in 6 bloom carriers
/// insert it, so holder queries return real (plus false-positive) hits.
const TARGET_DOC: &[u8] = b"doc-42";

/// Attached-info mix: 80% typed `InfoMap`s, 15% bloom attachments, 5%
/// foreign garbage (fails both decoders — exercises `decode_errors`).
fn info_for(id: u128, bandwidth_bps: f64) -> Bytes {
    let mut h = id as u64 ^ (id >> 64) as u64;
    let roll = splitmix(&mut h) % 100;
    if roll < 80 {
        let mut m = InfoMap::new();
        m.set_str("os", OSES[(splitmix(&mut h) % OSES.len() as u64) as usize])
            .set_f64("load", (splitmix(&mut h) % 1000) as f64 / 1000.0)
            .set_u64("files", splitmix(&mut h) % 10_000)
            .set_f64("bw", bandwidth_bps);
        m.encode().expect("within MAX_ENCODED")
    } else if roll < 95 {
        let mut f = Bloom::for_items(32, 0.01);
        for _ in 0..24 {
            f.insert(format!("doc-{}", splitmix(&mut h) % 4096).as_bytes());
        }
        if splitmix(&mut h) % 6 == 0 {
            f.insert(TARGET_DOC);
        }
        f.to_bytes()
    } else {
        // Leading 0x00 fails BloomView (k = 0), tag 0xFF fails InfoMap.
        Bytes::from_static(&[0x00, 0xFF, 0xFF])
    }
}

/// Stronger pipes pick stronger (lower-value) levels, coarsely mirroring
/// §5.1's bandwidth-driven level choice.
fn level_for(bandwidth_bps: f64) -> Level {
    let l = match bandwidth_bps {
        b if b >= 10_000_000.0 => 0,
        b if b >= 1_000_000.0 => 1,
        b if b >= 300_000.0 => 2,
        b if b >= 100_000.0 => 3,
        _ => 4,
    };
    Level::new(l)
}

fn pointer_for(id_raw: u128, bandwidth_bps: f64, now_us: u64) -> Pointer {
    let mut p = Pointer::with_info(
        NodeId(id_raw),
        Addr(id_raw as u64),
        level_for(bandwidth_bps),
        info_for(id_raw, bandwidth_bps),
    );
    p.last_refresh_us = now_us;
    p
}

struct Opts {
    n: usize,
    secs: f64,
    threads: usize,
    seed: u64,
    batch: usize,
    out: String,
    quick: bool,
}

fn parse_args() -> Opts {
    let usage =
        "usage: pwquery [--n N] [--secs S] [--threads T] [--seed X] [--batch B] [--out PATH] [--quick]";
    let mut o = Opts {
        n: 100_000,
        secs: 3.0,
        threads: 4,
        seed: 0xC0FFEE,
        batch: 256,
        out: "BENCH_PR10.json".to_string(),
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, what: &str| {
        it.next().unwrap_or_else(|| {
            eprintln!("{usage} ({what} takes a value)");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => o.n = need(&mut it, "--n").parse().expect("number"),
            "--secs" => o.secs = need(&mut it, "--secs").parse().expect("number"),
            "--threads" => o.threads = need(&mut it, "--threads").parse().expect("number"),
            "--seed" => o.seed = need(&mut it, "--seed").parse().expect("number"),
            "--batch" => o.batch = need(&mut it, "--batch").parse().expect("number"),
            "--out" => o.out = need(&mut it, "--out"),
            "--quick" => o.quick = true,
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if o.quick {
        o.n = o.n.min(10_000);
        o.secs = 1.0;
    }
    o.threads = o.threads.max(1);
    o.batch = o.batch.max(1);
    o
}

/// One churn op against the live list. Mix: enough inserts/removes to
/// keep membership turning over, a majority of touch/update traffic (the
/// protocol's steady-state refresh pattern).
enum Op {
    Insert(u128, f64),
    Remove,
    Touch,
    UpdateInfo,
}

struct ChurnState {
    list: PeerList,
    ids: Vec<NodeId>,
    spec_pool: Vec<(u128, f64)>,
    next_spec: usize,
    rng: u64,
    now_us: u64,
}

impl ChurnState {
    fn apply(&mut self, op: Op) {
        self.now_us += 1_000;
        match op {
            Op::Insert(id_raw, bw) => {
                let p = pointer_for(id_raw, bw, self.now_us);
                if self.list.insert(p).is_none() {
                    self.ids.push(NodeId(id_raw));
                }
            }
            Op::Remove => {
                if self.ids.len() > 1 {
                    let i = (splitmix(&mut self.rng) % self.ids.len() as u64) as usize;
                    let id = self.ids.swap_remove(i);
                    self.list.remove(id);
                }
            }
            Op::Touch => {
                if !self.ids.is_empty() {
                    let i = (splitmix(&mut self.rng) % self.ids.len() as u64) as usize;
                    self.list.touch(self.ids[i], self.now_us);
                }
            }
            Op::UpdateInfo => {
                if !self.ids.is_empty() {
                    let i = (splitmix(&mut self.rng) % self.ids.len() as u64) as usize;
                    let id = self.ids[i];
                    let bw = 100_000.0 + (splitmix(&mut self.rng) % 1_000_000) as f64;
                    self.list
                        .update_info(id, info_for(id.raw(), bw), self.now_us);
                }
            }
        }
    }

    fn next_op(&mut self) -> Op {
        match splitmix(&mut self.rng) % 100 {
            0..=19 => {
                let (id, bw) = self.spec_pool[self.next_spec % self.spec_pool.len()];
                self.next_spec += 1;
                // Perturb reused ids so recycled specs rejoin as new nodes.
                let salt = (self.next_spec / self.spec_pool.len()) as u128;
                Op::Insert(id ^ (salt << 96), bw)
            }
            20..=39 => Op::Remove,
            40..=89 => Op::Touch,
            _ => Op::UpdateInfo,
        }
    }
}

fn build_initial(cfg: &ChurnConfig) -> ChurnState {
    let pop = cfg.initial_population();
    let mut list = PeerList::new(Prefix::EMPTY);
    let mut ids = Vec::with_capacity(pop.len());
    let mut now_us = 0u64;
    for (spec, _residual) in &pop {
        now_us += 1_000;
        list.insert(pointer_for(spec.id_raw, spec.bandwidth_bps, now_us));
        ids.push(NodeId(spec.id_raw));
    }
    // Arrival specs to draw joins from while churning (recycled with an
    // id salt once exhausted).
    let spec_pool: Vec<(u128, f64)> = cfg
        .arrivals(4.0 * cfg.mean_lifetime_s())
        .into_iter()
        .map(|(_, s)| (s.id_raw, s.bandwidth_bps))
        .collect();
    ChurnState {
        list,
        ids,
        spec_pool: if spec_pool.is_empty() {
            vec![(0xDEAD_BEEF, 500_000.0)]
        } else {
            spec_pool
        },
        next_spec: 0,
        rng: cfg.seed ^ 0x51AB_71E5,
        now_us,
    }
}

/// Mutation throughput with and without per-batch snapshot publication:
/// the honest cost of the serving layer on the write side.
fn publish_overhead(
    state: &ChurnState,
    me: NodeIdentity,
    ops: usize,
    batch: usize,
) -> (f64, f64, u64) {
    let run = |publish: bool| -> (f64, u64) {
        let mut s = ChurnState {
            list: state.list.clone(),
            ids: state.ids.clone(),
            spec_pool: state.spec_pool.clone(),
            next_spec: state.next_spec,
            rng: state.rng,
            now_us: state.now_us,
        };
        let mut publisher = SnapshotPublisher::new();
        let mut published = 0u64;
        let t = Instant::now();
        let mut in_batch = 0;
        for _ in 0..ops {
            let op = s.next_op();
            s.apply(op);
            in_batch += 1;
            if publish && in_batch >= batch {
                in_batch = 0;
                if publisher.maybe_publish_list(me, Addr(1), &s.list, s.now_us) {
                    published += 1;
                }
            }
        }
        if publish && publisher.maybe_publish_list(me, Addr(1), &s.list, s.now_us) {
            published += 1;
        }
        (ops as f64 / t.elapsed().as_secs_f64(), published)
    };
    // Interleave and keep the best of each so a scheduler hiccup on one
    // side doesn't masquerade as publication cost.
    let mut plain: f64 = 0.0;
    let mut with_pub: f64 = 0.0;
    let mut published = 0;
    for _ in 0..3 {
        plain = plain.max(run(false).0);
        let (q, p) = run(true);
        with_pub = with_pub.max(q);
        published = p;
    }
    (plain, with_pub, published)
}

struct ClassResult {
    queries: u64,
    qps: f64,
    hits: u64,
    secs: f64,
}

/// Runs `threads` query workers against `engine` for `secs`, each
/// executing the plan produced by `make_plan` (varied per worker so the
/// string index sees different keys).
fn run_class(
    engine: &Arc<QueryEngine>,
    threads: usize,
    secs: f64,
    make_plan: impl Fn(usize) -> QueryPlan,
) -> ClassResult {
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..threads {
        let engine = Arc::clone(engine);
        let stop = Arc::clone(&stop);
        let queries = Arc::clone(&queries);
        let hits = Arc::clone(&hits);
        let plan = make_plan(w);
        workers.push(std::thread::spawn(move || {
            let mut local_q = 0u64;
            let mut local_h = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Re-load per iteration: each query observes the newest
                // prepared epoch, like a real serving loop would.
                let ps = engine.prepared();
                for _ in 0..32 {
                    let r = plan.execute(&ps);
                    local_h += std::hint::black_box(r.len()) as u64;
                    local_q += 1;
                }
            }
            queries.fetch_add(local_q, Ordering::Relaxed);
            hits.fetch_add(local_h, Ordering::Relaxed);
        }));
    }
    let t = Instant::now();
    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
    let elapsed = t.elapsed().as_secs_f64();
    let q = queries.load(Ordering::Relaxed);
    ClassResult {
        queries: q,
        qps: q as f64 / elapsed,
        hits: hits.load(Ordering::Relaxed),
        secs: elapsed,
    }
}

/// The pre-batching holders path, measured for comparison: per query,
/// deserialize every pointer's filter and hash the document against each
/// (`select::probable_holders` semantics, run against snapshot content).
fn run_holders_single(engine: &Arc<QueryEngine>, threads: usize, secs: f64) -> ClassResult {
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for _ in 0..threads {
        let engine = Arc::clone(engine);
        let stop = Arc::clone(&stop);
        let queries = Arc::clone(&queries);
        let hits = Arc::clone(&hits);
        workers.push(std::thread::spawn(move || {
            let mut local_q = 0u64;
            let mut local_h = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let ps = engine.prepared();
                let h = ps
                    .snapshot()
                    .pointers()
                    .iter()
                    .filter(|p| {
                        Bloom::from_bytes(&p.info)
                            .map(|f| f.maybe_contains(TARGET_DOC))
                            .unwrap_or(false)
                    })
                    .count();
                local_h += std::hint::black_box(h) as u64;
                local_q += 1;
            }
            queries.fetch_add(local_q, Ordering::Relaxed);
            hits.fetch_add(local_h, Ordering::Relaxed);
        }));
    }
    let t = Instant::now();
    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
    let elapsed = t.elapsed().as_secs_f64();
    let q = queries.load(Ordering::Relaxed);
    ClassResult {
        queries: q,
        qps: q as f64 / elapsed,
        hits: hits.load(Ordering::Relaxed),
        secs: elapsed,
    }
}

// ----------------------------------------------------------------- json out

struct Json {
    out: String,
    depth: usize,
    need_comma: bool,
}

impl Json {
    fn new() -> Self {
        Json {
            out: String::new(),
            depth: 0,
            need_comma: false,
        }
    }
    fn pad(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }
    fn open(&mut self, key: Option<&str>) {
        self.pad();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{k}\": ");
        }
        self.out.push('{');
        self.depth += 1;
        self.need_comma = false;
    }
    fn close(&mut self) {
        self.depth -= 1;
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push('}');
        self.need_comma = true;
    }
    fn num(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v:.1}");
        self.need_comma = true;
    }
    fn num3(&mut self, key: &str, v: f64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v:.3}");
        self.need_comma = true;
    }
    fn int(&mut self, key: &str, v: u64) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": {v}");
        self.need_comma = true;
    }
    fn str(&mut self, key: &str, v: &str) {
        self.pad();
        let _ = write!(self.out, "\"{key}\": \"{v}\"");
        self.need_comma = true;
    }
    fn class(&mut self, name: &str, r: &ClassResult, threads: usize) {
        self.open(Some(name));
        self.num("qps", r.qps);
        self.int("queries", r.queries);
        self.int("hits", r.hits);
        self.num3("secs", r.secs);
        self.int("threads", threads as u64);
        self.close();
    }
    fn finish(mut self) -> String {
        while self.depth > 0 {
            self.close();
        }
        self.out.push('\n');
        self.out.remove(0); // leading newline from the first pad
        self.out
    }
}

fn main() {
    let o = parse_args();
    let me = NodeIdentity::new(NodeId(1), Level::new(0));
    eprintln!("pwquery: building N={} list (seed {})", o.n, o.seed);
    let cfg = ChurnConfig::paper_common(o.n, o.seed);
    let mut state = build_initial(&cfg);
    let state_len = state.list.len();

    // --- snapshot publication overhead on the write side -----------------
    // Direct capture cost: what one publication of the full list costs.
    let capture_ms = {
        let mut p = SnapshotPublisher::new();
        let t = Instant::now();
        p.maybe_publish_list(me, Addr(1), &state.list, state.now_us);
        t.elapsed().as_secs_f64() * 1_000.0
    };
    let overhead_ops = if o.quick { 20_000 } else { 100_000 };
    let (plain_ops_s, pub_ops_s, published) = publish_overhead(&state, me, overhead_ops, o.batch);
    // Against a synthetic 1M-ops/s mutation loop this percentage is a
    // worst case by construction: real protocol events cost orders of
    // magnitude more per op than a bare list mutation, so the amortized
    // capture cost (capture_ms / batch) is the transferable number. The
    // <1%-on-the-protocol-hot-path claim is gated separately by
    // bench/tests/snapshot_overhead.rs.
    let overhead_pct = (plain_ops_s / pub_ops_s - 1.0) * 100.0;
    eprintln!(
        "pwquery: capture {capture_ms:.2} ms/snapshot; synthetic mutation throughput \
         plain {plain_ops_s:.0}/s, published {pub_ops_s:.0}/s \
         ({overhead_pct:+.2}% worst-case overhead, batch {})",
        o.batch
    );

    // --- initial publication + prepare -----------------------------------
    let mut publisher = SnapshotPublisher::new();
    publisher.maybe_publish_list(me, Addr(1), &state.list, state.now_us);
    let reader = publisher.reader();
    let t = Instant::now();
    let engine = Arc::new(QueryEngine::new(reader));
    let prepare_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let initial_errors = engine.prepared().decode_errors();
    eprintln!(
        "pwquery: prepared epoch {} ({} pointers, {} decode errors) in {prepare_ms:.1} ms",
        engine.prepared().epoch(),
        engine.prepared().len(),
        initial_errors,
    );

    // --- live churn + refresher -------------------------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let churn_ops = Arc::new(AtomicU64::new(0));
    let published_live = Arc::new(AtomicU64::new(0));
    let churn_thread = {
        let stop = Arc::clone(&stop);
        let churn_ops = Arc::clone(&churn_ops);
        let published_live = Arc::clone(&published_live);
        let batch = o.batch;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..batch {
                    let op = state.next_op();
                    state.apply(op);
                }
                churn_ops.fetch_add(batch as u64, Ordering::Relaxed);
                if publisher.maybe_publish_list(me, Addr(1), &state.list, state.now_us) {
                    published_live.fetch_add(1, Ordering::Relaxed);
                }
            }
            publisher.epoch()
        })
    };
    let refresher = {
        let stop = Arc::clone(&stop);
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let mut refreshes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if engine.refresh() {
                    refreshes += 1;
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            refreshes
        })
    };

    // --- query classes under live churn -----------------------------------
    let churn_t = Instant::now();
    eprintln!(
        "pwquery: measuring query classes ({} threads, {:.0} s each)",
        o.threads, o.secs
    );
    let partners = run_class(&engine, o.threads, o.secs, |w| QueryPlan::PartnersEq {
        key: "os".to_string(),
        value: OSES[w % OSES.len()].to_string(),
        limit: 16,
    });
    let k_lightest = run_class(&engine, o.threads, o.secs, |_| QueryPlan::KSmallest {
        key: "load".to_string(),
        k: 16,
    });
    let strongest = run_class(&engine, o.threads, o.secs, |_| QueryPlan::Strongest {
        k: 16,
    });
    let holders_batch = run_class(&engine, o.threads, o.secs, |_| {
        QueryPlan::holders(TARGET_DOC)
    });
    let holders_single = run_holders_single(&engine, o.threads, o.secs.min(2.0));
    let churn_secs = churn_t.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let final_epoch = churn_thread.join().expect("churn thread");
    let refreshes = refresher.join().expect("refresher thread");
    let ops = churn_ops.load(Ordering::Relaxed);
    let ps = engine.prepared();
    eprintln!(
        "pwquery: churned {ops} ops across {} epochs ({} refreshes); served epoch {} with {} pointers",
        final_epoch, refreshes, ps.epoch(), ps.len()
    );
    for c in [
        ("partners_eq", &partners),
        ("k_lightest", &k_lightest),
        ("strongest", &strongest),
        ("holders_batch", &holders_batch),
        ("holders_single", &holders_single),
    ] {
        eprintln!(
            "  query_qps_{}: {:.0}/s ({} queries)",
            c.0, c.1.qps, c.1.queries
        );
    }

    // --- write BENCH_PR10.json --------------------------------------------
    let mut j = Json::new();
    j.open(None);
    j.str("generated_by", "pwquery");
    j.int("pr", 10);
    j.str("mode", if o.quick { "quick" } else { "full" });
    j.open(Some("host"));
    j.int(
        "parallelism",
        std::thread::available_parallelism().map_or(1, |p| p.get() as u64),
    );
    j.close();
    j.open(Some("config"));
    j.int("n", o.n as u64);
    j.int("threads", o.threads as u64);
    j.num3("secs_per_class", o.secs);
    j.int("seed", o.seed);
    j.int("publish_batch_ops", o.batch as u64);
    j.close();
    j.open(Some("snapshot_publication"));
    j.num3("capture_ms_per_snapshot", capture_ms);
    j.num3(
        "capture_ns_per_pointer",
        capture_ms * 1e6 / state_len as f64,
    );
    j.num("mutation_ops_per_s_plain", plain_ops_s);
    j.num("mutation_ops_per_s_published", pub_ops_s);
    j.num3("synthetic_worst_case_overhead_pct", overhead_pct);
    j.int("overhead_probe_ops", overhead_ops as u64);
    j.int("overhead_probe_published", published);
    j.close();
    j.open(Some("prepare"));
    j.num3("initial_ms", prepare_ms);
    j.int("pointers", ps.len() as u64);
    j.int("decode_errors_initial", initial_errors);
    j.close();
    j.open(Some("live_churn"));
    j.int("ops_applied", ops);
    j.num("ops_per_s", ops as f64 / churn_secs);
    j.int("epochs_published", final_epoch);
    j.int("epochs_prepared", refreshes);
    j.int("served_epoch", ps.epoch());
    j.int("served_pointers", ps.len() as u64);
    j.close();
    j.open(Some("benches"));
    j.class("query_qps_partners_eq", &partners, o.threads);
    j.class("query_qps_k_lightest", &k_lightest, o.threads);
    j.class("query_qps_strongest", &strongest, o.threads);
    j.class("query_qps_holders_batch", &holders_batch, o.threads);
    j.class("query_qps_holders_single", &holders_single, o.threads);
    j.close();
    j.int("decode_errors_total", engine.decode_errors_total());
    j.int("diag_records", engine.take_diagnostics().len() as u64);
    let json = j.finish();
    std::fs::write(&o.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", o.out);
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("pwquery: wrote {}", o.out);
}
