//! `pwcheck` — the explicit-state model checker, from the command line.
//!
//! Breadth-first exploration of membership-operation interleavings
//! (join / leave / crash / level-shift) over real protocol machines,
//! with canonical-state hashing (id-symmetry + reconvergence dedup),
//! per-event local invariant checks, temporal properties under fault
//! plans, and oracle-verified counterexample shrinking.
//!
//! Commands:
//!
//! * `run`    — explore the op space and check properties; prints the
//!   run counters, or the failing trace on refutation.
//! * `stats`  — run the same space twice, dedup on and off, with the
//!   brute-force pass pinned to the dedup pass's transition budget;
//!   prints both counter lines and the measured reduction factor.
//! * `shrink` — like `run`, but on refutation the failing trace is
//!   minimized (op deletion + id-table compaction, each step verified
//!   by replay) before reporting.
//!
//! The `--partition` scenario installs a one-way blackhole fault plan
//! between two joiners and checks the two ROADMAP liveness properties
//! (*partition-heal-reconverges*, *no-correct-node-permanently-
//! expunged*) on every reachable state's fair extension; `--gap13-bug`
//! re-arms the DESIGN.md gap-13 false-obituary bug so the catch (and
//! the shrunk repro) can be demonstrated end to end. `--departed` adds
//! *eventually-no-departed-pointer* — the §4.5 lazy-maintenance promise
//! the PR 7 depth-4 run falsified before cross-level fallback probing
//! (run it as `--ids 3 --depth 4 --levels 0,1 --departed`).
//!
//! Exit status: 0 when every property holds, 1 on a refutation or
//! invariant violation, 2 on a usage error.

use peerwindow_faults::{Condition, FaultPlan, FaultRule, LinkSel, NodeSel};
use peerwindow_mc::{
    always_system_invariants, check, eventually_no_departed_pointer, mc_protocol_config,
    no_correct_node_permanently_expunged, partition_heal_reconverges, shrink, McConfig, Property,
};
use std::process::exit;

/// First-bit-diverse id table: alternating top-bit classes so
/// `--class-bits 1` always has nontrivial symmetry classes to quotient.
const ID_TABLE: [u128; 8] = [
    0x2000_0000_0000_0000_0000_0000_0000_0000,
    0x6000_0000_0000_0000_0000_0000_0000_0000,
    0xa000_0000_0000_0000_0000_0000_0000_0000,
    0xe000_0000_0000_0000_0000_0000_0000_0000,
    0x3000_0000_0000_0000_0000_0000_0000_0000,
    0xb000_0000_0000_0000_0000_0000_0000_0000,
    0x7000_0000_0000_0000_0000_0000_0000_0000,
    0xf000_0000_0000_0000_0000_0000_0000_0000,
];

fn usage() -> ! {
    eprintln!(
        "usage: pwcheck <run|stats|shrink> [options]\n\
         \n\
         options:\n\
           --ids N         nodes in the id table (2..=8, default 4)\n\
           --depth N       max ops per trace (default 3)\n\
           --levels L,L    levels Shift may target (default 0)\n\
           --no-crash      drop silent crashes from the op alphabet\n\
           --no-dedup      brute-force mode (run/shrink only)\n\
           --budget N      stop after N transitions (0 = unbounded)\n\
           --class-bits N  id prefix bits relabelings preserve (default 1)\n\
           --settle-us N   settle time per op, microseconds\n\
           --partition     blackhole fault plan + liveness properties\n\
           --gap13-bug     re-arm the DESIGN.md gap-13 bug (implies --partition)\n\
           --departed      add the eventually-no-departed-pointer liveness\n\
                           property (the depth-4 off-level-crash scenario)"
    );
    exit(2)
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(v) = v else {
        eprintln!("{flag} needs a value");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        exit(2)
    })
}

struct Opts {
    command: String,
    ids: usize,
    depth: usize,
    levels: Vec<u8>,
    allow_crash: bool,
    dedup: bool,
    budget: u64,
    class_bits: u8,
    settle_us: Option<u64>,
    partition: bool,
    gap13_bug: bool,
    departed: bool,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    if !["run", "stats", "shrink"].contains(&command.as_str()) {
        eprintln!("unknown command {command:?}");
        usage()
    }
    let mut opts = Opts {
        command: command.clone(),
        ids: 4,
        depth: 3,
        levels: vec![0],
        allow_crash: true,
        dedup: true,
        budget: 0,
        class_bits: 1,
        settle_us: None,
        partition: false,
        gap13_bug: false,
        departed: false,
    };
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ids" => opts.ids = parse_num("--ids", it.next()),
            "--depth" => opts.depth = parse_num("--depth", it.next()),
            "--levels" => {
                let v: String = parse_num("--levels", it.next());
                opts.levels = v
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--levels: cannot parse {s:?}");
                            exit(2)
                        })
                    })
                    .collect();
            }
            "--no-crash" => opts.allow_crash = false,
            "--no-dedup" => opts.dedup = false,
            "--budget" => opts.budget = parse_num("--budget", it.next()),
            "--class-bits" => opts.class_bits = parse_num("--class-bits", it.next()),
            "--settle-us" => opts.settle_us = Some(parse_num("--settle-us", it.next())),
            "--partition" => opts.partition = true,
            "--gap13-bug" => opts.gap13_bug = true,
            "--departed" => opts.departed = true,
            _ => usage(),
        }
    }
    if opts.ids < 2 || opts.ids > ID_TABLE.len() || opts.depth == 0 || opts.levels.is_empty() {
        eprintln!("need 2 <= --ids <= {} and --depth >= 1", ID_TABLE.len());
        exit(2);
    }
    // The gap-13 bug only manifests under the blackhole scenario; the
    // flag without the fault plan would silently report "ok".
    if opts.gap13_bug {
        opts.partition = true;
    }
    opts
}

fn build(opts: &Opts) -> (McConfig, Vec<Property>) {
    let mut cfg = McConfig::new(&ID_TABLE[..opts.ids]);
    cfg.max_ops = opts.depth;
    cfg.levels = opts.levels.clone();
    cfg.allow_crash = opts.allow_crash;
    cfg.dedup = opts.dedup;
    cfg.max_transitions = opts.budget;
    cfg.class_bits = opts.class_bits;
    cfg.reintroduce_gap13 = opts.gap13_bug;
    if let Some(s) = opts.settle_us {
        cfg.settle_us = s;
    }
    if opts.departed {
        // The depth-4 off-level-crash scenario needs the tuned checker
        // protocol so fair extensions detect lonely-peer crashes within
        // the settle allowance. (Set before the partition block so its
        // wide bandwidth window survives the combination.)
        cfg.protocol = mc_protocol_config();
    }
    let mut props = vec![always_system_invariants()];
    if opts.partition {
        // The validated gap-13 scenario (see tests/invariant_sweep.rs
        // for the timing derivation): a 2s one-way blackhole between
        // the first two joiners swallows exactly one probe cycle's
        // acks, forcing a false obituary whose courtesy copy lands
        // after the heal — refutable iff the gap-13 fix is present.
        cfg.allow_crash = false;
        cfg.protocol.bandwidth_window_us = 30_000_000;
        cfg.plan = Some(FaultPlan::reliable(11).with_rule(FaultRule {
            from_us: 26_000_000,
            until_us: 28_000_000,
            links: LinkSel::one_way(NodeSel::One(2), NodeSel::One(1)),
            condition: Condition::Blackhole,
        }));
        props = vec![
            partition_heal_reconverges(),
            no_correct_node_permanently_expunged(),
        ];
    }
    if opts.departed {
        props.push(eventually_no_departed_pointer());
    }
    (cfg, props)
}

fn main() {
    let opts = parse_opts();
    let (cfg, props) = build(&opts);
    match opts.command.as_str() {
        "run" | "shrink" => match check(&cfg, &props) {
            Ok(stats) => {
                println!("ok: {stats}");
                println!("reduction factor: {:.2}x", stats.reduction_factor());
            }
            Err(failure) => {
                println!("FAILED: {failure}");
                if opts.command == "shrink" {
                    let repro = shrink(&cfg, &props, &failure);
                    println!("{repro}");
                }
                exit(1);
            }
        },
        "stats" => {
            let mut dedup_cfg = cfg.clone();
            dedup_cfg.dedup = true;
            let with = match check(&dedup_cfg, &props) {
                Ok(s) => s,
                Err(failure) => {
                    println!("FAILED (dedup pass): {failure}");
                    exit(1);
                }
            };
            println!("dedup:       {with}");

            let mut brute_cfg = cfg.clone();
            brute_cfg.dedup = false;
            // Equal-budget comparison: pin brute force to exactly the
            // transition count the dedup pass needed (unless the user
            // chose a tighter budget).
            brute_cfg.max_transitions = if opts.budget > 0 {
                opts.budget.min(with.transitions)
            } else {
                with.transitions
            };
            match check(&brute_cfg, &props) {
                Ok(brute) => {
                    println!("brute force: {brute}");
                    println!(
                        "reduction factor: {:.2}x; equal-budget brute force {}",
                        with.reduction_factor(),
                        if brute.completed {
                            "also finished"
                        } else {
                            "did NOT finish"
                        }
                    );
                }
                Err(failure) => {
                    println!("FAILED (brute-force pass): {failure}");
                    exit(1);
                }
            }
        }
        _ => unreachable!(),
    }
}
