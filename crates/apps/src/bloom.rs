//! Bloom-filter attachments (§3's compression technique).
//!
//! "LOCKSS can use bloom filter to indicate whether a node contains a
//! given digital document and attach the filter results into the
//! pointers." This module provides a small, fixed-size Bloom filter whose
//! byte form fits the attached-info budget, so a node can advertise a
//! whole document collection in a couple hundred bytes and peers can
//! answer "who probably holds X?" from their own peer lists.

use bytes::Bytes;

/// A Bloom filter over `8·bytes` bits with `k` double-hashed probes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

fn hash2(item: &[u8]) -> (u64, u64) {
    // Two FNV-1a variants; double hashing g_i = h1 + i·h2 gives k probes.
    let mut h1: u64 = 0xcbf29ce484222325;
    let mut h2: u64 = 0x84222325cbf29ce4;
    for &b in item {
        h1 = (h1 ^ b as u64).wrapping_mul(0x100000001b3);
        h2 = (h2 ^ b as u64).wrapping_mul(0x100000001b5);
    }
    (h1, h2 | 1)
}

/// A precomputed probe set: the two double-hash bases for one item.
///
/// Hashing the item is the only per-item cost that doesn't depend on the
/// filter, so a query that tests one document against *many* pointers'
/// filters computes the probe once ([`Bloom::probe`]) and evaluates it
/// against each filter ([`Bloom::contains_probe`] /
/// [`BloomView::contains_probe`]) — the batched path of
/// `probable_holders`. Probe evaluation adapts to each filter's own `m`
/// and `k`, so one probe is valid against filters of any size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomProbe {
    /// First double-hash base.
    pub h1: u64,
    /// Second double-hash base (always odd).
    pub h2: u64,
}

fn probe_hits(bits: &[u8], k: u32, probe: BloomProbe) -> bool {
    let m = (bits.len() * 8) as u64;
    (0..k as u64).all(|i| {
        let bit = probe.h1.wrapping_add(i.wrapping_mul(probe.h2)) % m;
        bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
    })
}

/// A zero-copy view over a serialized filter (`k:u8` + bits), for
/// membership tests straight out of a pointer's attached-info bytes —
/// no `Vec` allocation, no copy. Accepts exactly the inputs
/// [`Bloom::from_bytes`] accepts.
#[derive(Clone, Copy, Debug)]
pub struct BloomView<'a> {
    k: u32,
    bits: &'a [u8],
}

impl<'a> BloomView<'a> {
    /// Parses a view; `None` on malformed input (same acceptance rule as
    /// [`Bloom::from_bytes`]).
    pub fn parse(buf: &'a [u8]) -> Option<BloomView<'a>> {
        if buf.len() < 2 || buf[0] == 0 {
            return None;
        }
        Some(BloomView {
            k: buf[0] as u32,
            bits: &buf[1..],
        })
    }

    /// Number of hash probes.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Whether the probed item is *possibly* present. Identical result to
    /// deserializing with [`Bloom::from_bytes`] and calling
    /// [`Bloom::maybe_contains`] on the probed item.
    pub fn contains_probe(&self, probe: BloomProbe) -> bool {
        probe_hits(self.bits, self.k, probe)
    }
}

impl Bloom {
    /// Creates an empty filter of `bytes` bytes with `k` hash probes.
    ///
    /// # Panics
    /// Panics if `bytes == 0` or `k == 0`.
    pub fn new(bytes: usize, k: u32) -> Self {
        assert!(bytes > 0 && k > 0);
        Bloom {
            bits: vec![0; bytes],
            k,
        }
    }

    /// Sizes a filter for `n` items at roughly the given false-positive
    /// rate (standard m = −n·ln p / ln²2, k = m/n·ln 2 formulas).
    pub fn for_items(n: usize, fp_rate: f64) -> Self {
        let n = n.max(1) as f64;
        let p = fp_rate.clamp(1e-9, 0.5);
        let m_bits = (-n * p.ln() / (2f64.ln() * 2f64.ln())).ceil().max(8.0);
        let k = ((m_bits / n) * 2f64.ln()).round().clamp(1.0, 16.0);
        Bloom::new((m_bits / 8.0).ceil() as usize, k as u32)
    }

    /// Number of hash probes.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Filter size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: &[u8]) {
        let m = (self.bits.len() * 8) as u64;
        let (h1, h2) = hash2(item);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// Whether the item is *possibly* present (false positives allowed,
    /// false negatives impossible).
    pub fn maybe_contains(&self, item: &[u8]) -> bool {
        self.contains_probe(Bloom::probe(item))
    }

    /// Precomputes the probe set for `item`, reusable against any number
    /// of filters of any size (see [`BloomProbe`]).
    pub fn probe(item: &[u8]) -> BloomProbe {
        let (h1, h2) = hash2(item);
        BloomProbe { h1, h2 }
    }

    /// Whether the probed item is *possibly* present — `maybe_contains`
    /// with the item hashing hoisted out.
    pub fn contains_probe(&self, probe: BloomProbe) -> bool {
        probe_hits(&self.bits, self.k, probe)
    }

    /// Serializes as `k:u8` + bits, for pointer attachment.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.bits.len() + 1);
        out.push(self.k as u8);
        out.extend_from_slice(&self.bits);
        Bytes::from(out)
    }

    /// Deserializes; `None` on malformed input.
    pub fn from_bytes(buf: &[u8]) -> Option<Bloom> {
        if buf.len() < 2 || buf[0] == 0 {
            return None;
        }
        Some(Bloom {
            k: buf[0] as u32,
            bits: buf[1..].to_vec(),
        })
    }

    /// Fraction of set bits (load factor; > ~0.5 means the filter is
    /// overfull and false positives explode).
    pub fn load(&self) -> f64 {
        let ones: u32 = self.bits.iter().map(|b| b.count_ones()).sum();
        ones as f64 / (self.bits.len() * 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = Bloom::for_items(100, 0.01);
        let items: Vec<String> = (0..100).map(|i| format!("doc-{i}")).collect();
        for it in &items {
            f.insert(it.as_bytes());
        }
        for it in &items {
            assert!(f.maybe_contains(it.as_bytes()), "false negative on {it}");
        }
    }

    #[test]
    fn false_positive_rate_is_near_target() {
        let mut f = Bloom::for_items(500, 0.02);
        for i in 0..500 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..20_000)
            .filter(|i| f.maybe_contains(format!("absent-{i}").as_bytes()))
            .count() as f64
            / 20_000.0;
        assert!(fp < 0.05, "false-positive rate {fp}");
        assert!(f.load() < 0.6, "overfull: {}", f.load());
    }

    #[test]
    fn sizing_fits_attached_info_budget() {
        // 100 documents at 1% fp → ~120 bytes: attachable.
        let f = Bloom::for_items(100, 0.01);
        assert!(f.byte_len() <= 128, "{} bytes", f.byte_len());
        assert!(f.to_bytes().len() <= 129);
    }

    #[test]
    fn roundtrip_serialization() {
        let mut f = Bloom::for_items(50, 0.01);
        for i in 0..50 {
            f.insert(format!("x{i}").as_bytes());
        }
        let b = f.to_bytes();
        let g = Bloom::from_bytes(&b).unwrap();
        assert_eq!(f, g);
        assert!(Bloom::from_bytes(&[]).is_none());
        assert!(Bloom::from_bytes(&[0, 1, 2]).is_none());
    }

    #[test]
    fn probe_and_view_match_owned_path() {
        let mut f = Bloom::for_items(64, 0.02);
        for i in 0..64 {
            f.insert(format!("d{i}").as_bytes());
        }
        let wire = f.to_bytes();
        let view = BloomView::parse(&wire).unwrap();
        assert_eq!(view.k(), f.k());
        for i in 0..256 {
            let item = format!("d{i}");
            let probe = Bloom::probe(item.as_bytes());
            let owned = f.maybe_contains(item.as_bytes());
            assert_eq!(f.contains_probe(probe), owned);
            assert_eq!(view.contains_probe(probe), owned);
        }
        // View acceptance matches from_bytes.
        assert!(BloomView::parse(&[]).is_none());
        assert!(BloomView::parse(&[4]).is_none());
        assert!(BloomView::parse(&[0, 1, 2]).is_none());
    }

    #[test]
    fn empty_filter_contains_nothing_definitively() {
        let f = Bloom::new(32, 4);
        assert!(!f.maybe_contains(b"anything"));
        assert_eq!(f.load(), 0.0);
    }
}
