//! The pwquery serving engine: high-QPS queries over published snapshots.
//!
//! [`select`](crate::select) answers the paper's §1/§3 queries directly
//! against a [`PeerList`](peerwindow_core::peer_list::PeerList) — correct,
//! but every call re-decodes every pointer's attached info and the caller
//! must hold the list (and therefore the protocol) still. This module is
//! the serving-layer version: it consumes the immutable
//! [`PeerSnapshot`]s the protocol publishes (`peerwindow_core::snapshot`)
//! and amortizes all per-pointer work into a one-time *prepare* pass, so
//! steady-state queries are index lookups.
//!
//! * [`PreparedSnapshot`] — one snapshot plus its decoded infos and
//!   indexes (sorted numeric columns, a string-equality index, the
//!   level order, the bloom-bearing subset). Prepared once per epoch.
//! * [`QueryPlan`] — a reusable, snapshot-independent compiled query:
//!   holders plans precompute their [`BloomProbe`] once and reuse it
//!   across every snapshot and every pointer's filter (the batched
//!   bloom evaluation of the PR's tentpole).
//! * [`QueryEngine`] — ties a [`SnapshotReader`] to a lock-free
//!   [`Published`] cell of the latest [`PreparedSnapshot`]: a refresher
//!   thread calls [`QueryEngine::refresh`], any number of query threads
//!   call [`QueryEngine::prepared`] and execute plans without ever
//!   taking a lock.
//!
//! Every query here is *result-identical* to its [`select`](crate::select)
//! counterpart on the same list content — pinned by proptests in
//! `tests/` — so callers can move from list-querying to snapshot-serving
//! without behavioral drift.
//!
//! Decode failures are not swallowed: each prepare counts pointers whose
//! non-empty info decodes as neither an [`InfoMap`] nor a bloom
//! attachment, and the engine surfaces the total plus a
//! `DiagCode::InfoDecodeError` trace record per affected refresh.

use crate::bloom::{Bloom, BloomProbe, BloomView};
use crate::info::InfoMap;
use crate::select;
use peerwindow_core::pointer::Pointer;
use peerwindow_core::snapshot::{PeerSnapshot, Published, SnapshotReader};
use peerwindow_trace::{CauseId, DiagCode, NodeTrace, TraceEventKind, TraceRecord};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A snapshot with all per-pointer work done up front: infos decoded,
/// numeric columns sorted, string values indexed, level order
/// materialized, bloom-bearing pointers collected. Queries against a
/// prepared snapshot are allocation-light index walks.
#[derive(Debug)]
pub struct PreparedSnapshot {
    snap: Arc<PeerSnapshot>,
    /// Decoded info per pointer (index-parallel with `snap.pointers()`);
    /// empty on decode failure, mirroring [`select::info_of`].
    infos: Vec<InfoMap>,
    /// Pointers whose non-empty info decoded as neither an `InfoMap` nor
    /// a bloom attachment — foreign-attachment rot, surfaced not hidden.
    decode_errors: u64,
    /// Pointer indices sorted by `(level value, id)` — the
    /// strongest-nodes order.
    by_level: Vec<u32>,
    /// Per-key numeric columns: `(value, pointer index)` in ascending
    /// value order (ties keep id order — same stable order as
    /// [`select::k_smallest_by`]).
    f64_cols: BTreeMap<String, Vec<(f64, u32)>>,
    /// Exact-match string index: `(key, value)` → pointer indices in id
    /// order.
    str_index: BTreeMap<(String, String), Vec<u32>>,
    /// Indices of pointers whose info parses as a serialized bloom
    /// filter (the [`BloomView::parse`] acceptance rule — identical to
    /// what [`select::probable_holders`] would consider).
    bloom_idxs: Vec<u32>,
}

impl PreparedSnapshot {
    /// Runs the prepare pass over `snap`. `O(n · info size)` — done once
    /// per published epoch, off the query path.
    pub fn prepare(snap: Arc<PeerSnapshot>) -> Self {
        let n = snap.len();
        let mut infos = Vec::with_capacity(n);
        let mut decode_errors = 0u64;
        let mut f64_cols: BTreeMap<String, Vec<(f64, u32)>> = BTreeMap::new();
        let mut str_index: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
        let mut bloom_idxs = Vec::new();
        for (i, p) in snap.pointers().iter().enumerate() {
            let idx = i as u32;
            // Bloom candidacy is independent of InfoMap decodability so
            // the batched holders path accepts exactly the filters the
            // per-pointer path accepts.
            if BloomView::parse(&p.info).is_some() {
                bloom_idxs.push(idx);
            }
            let info = match select::try_info_of(p) {
                Ok(m) => m,
                Err(_) => {
                    if BloomView::parse(&p.info).is_none() {
                        decode_errors += 1;
                    }
                    InfoMap::default()
                }
            };
            for (key, value) in info.iter() {
                match value {
                    crate::info::Value::F64(v) => {
                        f64_cols.entry(key.to_string()).or_default().push((*v, idx));
                    }
                    // u64 counters are not coerced into numeric columns:
                    // `InfoMap::get_f64` doesn't coerce either, and the
                    // columns must answer exactly what select answers.
                    crate::info::Value::U64(_) => {}
                    crate::info::Value::Str(s) => {
                        str_index
                            .entry((key.to_string(), s.clone()))
                            .or_default()
                            .push(idx);
                    }
                }
            }
            infos.push(info);
        }
        for col in f64_cols.values_mut() {
            // Stable by-value sort: ties keep pointer-id order, exactly
            // like select::k_smallest_by's stable sort over an id-ordered
            // scan.
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }
        let mut by_level: Vec<u32> = (0..n as u32).collect();
        by_level.sort_by_key(|&i| {
            let p = &snap.pointers()[i as usize];
            (p.level.value(), p.id)
        });
        PreparedSnapshot {
            snap,
            infos,
            decode_errors,
            by_level,
            f64_cols,
            str_index,
            bloom_idxs,
        }
    }

    /// A prepared view of the empty snapshot (what a fresh engine serves
    /// before the first publication).
    pub fn empty() -> Self {
        Self::prepare(Arc::new(PeerSnapshot::empty()))
    }

    /// The underlying snapshot.
    #[inline]
    pub fn snapshot(&self) -> &Arc<PeerSnapshot> {
        &self.snap
    }

    /// Snapshot epoch (shorthand for `snapshot().epoch`).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// Number of pointers served.
    #[inline]
    pub fn len(&self) -> usize {
        self.snap.len()
    }

    /// Whether the snapshot holds no pointers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.snap.is_empty()
    }

    /// Pointers whose info decoded as neither schema (this snapshot
    /// only; the engine accumulates across refreshes).
    #[inline]
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// The decoded info of pointer index `i` (empty map on decode
    /// failure, like [`select::info_of`]).
    pub fn info(&self, i: usize) -> &InfoMap {
        &self.infos[i]
    }

    /// All pointers whose decoded info satisfies `pred` — the
    /// full-scan partner query, with decoding already paid.
    pub fn find_partners(&self, mut pred: impl FnMut(&Pointer, &InfoMap) -> bool) -> Vec<&Pointer> {
        self.snap
            .pointers()
            .iter()
            .zip(&self.infos)
            .filter(|(p, m)| pred(p, m))
            .map(|(p, _)| p)
            .collect()
    }

    /// Partners whose string field `key` equals `value` exactly — the
    /// indexed fast path (`O(log n + hits)`). `limit` caps the result
    /// (id order, so it pages deterministically); pass `usize::MAX` for
    /// all matches.
    pub fn partners_eq(&self, key: &str, value: &str, limit: usize) -> Vec<&Pointer> {
        match self.str_index.get(&(key.to_string(), value.to_string())) {
            Some(idxs) => idxs
                .iter()
                .take(limit)
                .map(|&i| &self.snap.pointers()[i as usize])
                .collect(),
            None => Vec::new(),
        }
    }

    /// The `k` pointers with the smallest value of numeric field `key`
    /// (`O(k)` off the presorted column).
    pub fn k_smallest_by(&self, key: &str, k: usize) -> Vec<&Pointer> {
        match self.f64_cols.get(key) {
            Some(col) => col
                .iter()
                .take(k)
                .map(|&(_, i)| &self.snap.pointers()[i as usize])
                .collect(),
            None => Vec::new(),
        }
    }

    /// Up to `k` pointers at the strongest levels (`O(k)` off the level
    /// order).
    pub fn strongest(&self, k: usize) -> Vec<&Pointer> {
        self.by_level
            .iter()
            .take(k)
            .map(|&i| &self.snap.pointers()[i as usize])
            .collect()
    }

    /// Pointers that *probably* hold the probed document: the batched
    /// bloom path — one precomputed probe set evaluated across all
    /// bloom-bearing pointers in a single pass, zero-copy over each
    /// pointer's attached bytes.
    pub fn probable_holders_probe(&self, probe: BloomProbe) -> Vec<&Pointer> {
        self.bloom_idxs
            .iter()
            .filter_map(|&i| {
                let p = &self.snap.pointers()[i as usize];
                // Parse can't fail: membership in bloom_idxs means it
                // parsed at prepare time and the bytes are immutable.
                BloomView::parse(&p.info)
                    .filter(|v| v.contains_probe(probe))
                    .map(|_| p)
            })
            .collect()
    }

    /// Convenience: hash `document` and run the batched holders query.
    pub fn probable_holders(&self, document: &[u8]) -> Vec<&Pointer> {
        self.probable_holders_probe(Bloom::probe(document))
    }
}

/// A compiled, snapshot-independent query: build once, execute against
/// every prepared snapshot the engine publishes. The payoff is in
/// [`QueryPlan::holders`], which hashes the document once at plan-build
/// time; the other variants pre-own their parameters so the hot path
/// does no allocation.
#[derive(Clone, Debug)]
pub enum QueryPlan {
    /// Partners whose string field `key` equals `value`.
    PartnersEq {
        /// Info field name.
        key: String,
        /// Required exact value.
        value: String,
        /// Result budget (`usize::MAX` for all matches).
        limit: usize,
    },
    /// The `k` pointers with the smallest numeric field `key`.
    KSmallest {
        /// Info field name.
        key: String,
        /// Result budget.
        k: usize,
    },
    /// Up to `k` pointers at the strongest levels.
    Strongest {
        /// Result budget.
        k: usize,
    },
    /// Probable holders of a document (probe precomputed).
    Holders {
        /// The document's precomputed probe set.
        probe: BloomProbe,
    },
}

impl QueryPlan {
    /// A holders plan for `document`, hashing it exactly once.
    pub fn holders(document: &[u8]) -> Self {
        QueryPlan::Holders {
            probe: Bloom::probe(document),
        }
    }

    /// Executes the plan against a prepared snapshot.
    pub fn execute<'s>(&self, ps: &'s PreparedSnapshot) -> Vec<&'s Pointer> {
        match self {
            QueryPlan::PartnersEq { key, value, limit } => ps.partners_eq(key, value, *limit),
            QueryPlan::KSmallest { key, k } => ps.k_smallest_by(key, *k),
            QueryPlan::Strongest { k } => ps.strongest(*k),
            QueryPlan::Holders { probe } => ps.probable_holders_probe(*probe),
        }
    }
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The serving engine: one node's [`SnapshotReader`] on the write side,
/// a lock-free [`Published`] cell of the latest [`PreparedSnapshot`] on
/// the read side.
///
/// Threading model: any number of query threads call [`Self::prepared`]
/// (wait-free load) and execute plans; one or more refresher threads
/// call [`Self::refresh`] (serialized internally) to fold newly
/// published protocol snapshots into prepared form. Queries never block
/// on a refresh in progress — they keep serving the previous epoch
/// until the swap.
#[derive(Debug)]
pub struct QueryEngine {
    source: SnapshotReader,
    prepared: Arc<Published<PreparedSnapshot>>,
    /// Cumulative decode errors across all refreshed epochs.
    decode_errors_total: AtomicU64,
    refresh_lock: Mutex<()>,
    diag: Mutex<NodeTrace>,
}

impl QueryEngine {
    /// Builds an engine over `source`, preparing its current snapshot
    /// immediately.
    pub fn new(source: SnapshotReader) -> Self {
        let first = PreparedSnapshot::prepare(source.load());
        let me = first.snapshot().me.id.raw();
        let mut trace = NodeTrace::new(me);
        trace.set_enabled(true);
        let engine = QueryEngine {
            source,
            decode_errors_total: AtomicU64::new(0),
            refresh_lock: Mutex::new(()),
            diag: Mutex::new(trace),
            prepared: Arc::new(Published::new(Arc::new(PreparedSnapshot::empty()))),
        };
        engine.install(first);
        engine
    }

    fn install(&self, ps: PreparedSnapshot) {
        let errs = ps.decode_errors();
        if errs > 0 {
            self.decode_errors_total.fetch_add(errs, Ordering::Relaxed);
            let mut diag = unpoison(self.diag.lock());
            diag.set_now(ps.snapshot().at_us);
            diag.emit(
                ps.snapshot().me.level.value(),
                TraceEventKind::Diag {
                    code: DiagCode::InfoDecodeError,
                },
                CauseId::NONE,
            );
        }
        self.prepared.publish(Arc::new(ps));
    }

    /// Folds the source's latest snapshot into prepared form if its
    /// epoch advanced past what we serve. Returns `true` when a new
    /// prepared snapshot was published. Concurrent callers are
    /// serialized; queries are never blocked.
    pub fn refresh(&self) -> bool {
        let _g = unpoison(self.refresh_lock.lock());
        let snap = self.source.load();
        if snap.epoch <= self.prepared.load().epoch() {
            return false;
        }
        self.install(PreparedSnapshot::prepare(snap));
        true
    }

    /// The latest prepared snapshot — wait-free, never torn; hold the
    /// `Arc` for as long as the query runs.
    #[inline]
    pub fn prepared(&self) -> Arc<PreparedSnapshot> {
        self.prepared.load()
    }

    /// Executes a plan against the latest prepared snapshot, cloning the
    /// results out (borrow-free convenience; hot loops should hold
    /// [`Self::prepared`] and use [`QueryPlan::execute`]).
    pub fn execute(&self, plan: &QueryPlan) -> Vec<Pointer> {
        let ps = self.prepared();
        plan.execute(&ps).into_iter().cloned().collect()
    }

    /// Cumulative count of undecodable attached infos seen across all
    /// refreshes (per-snapshot counts are on [`PreparedSnapshot`]).
    pub fn decode_errors_total(&self) -> u64 {
        self.decode_errors_total.load(Ordering::Relaxed)
    }

    /// Drains the engine's diagnostic trace records (one
    /// `info_decode_error` record per refresh that surfaced errors).
    pub fn take_diagnostics(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        unpoison(self.diag.lock()).drain_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use peerwindow_core::peer_list::PeerList;
    use peerwindow_core::prelude::*;
    use peerwindow_core::snapshot::SnapshotPublisher;

    fn info(os: &str, load: f64) -> Bytes {
        let mut m = InfoMap::new();
        m.set_str("os", os).set_f64("load", load);
        m.encode().unwrap()
    }

    fn seeded_list() -> PeerList {
        let mut l = PeerList::new(Prefix::EMPTY);
        let mut holder = Bloom::for_items(10, 0.01);
        holder.insert(b"doc-42");
        for (id, level, bytes) in [
            (1u128, 0u8, info("linux", 0.9)),
            (2, 1, info("windows", 0.1)),
            (3, 2, info("linux", 0.4)),
            (4, 0, holder.to_bytes()),
            (5, 3, Bytes::from_static(b"\xff")), // undecodable rot
            (6, 2, Bytes::new()),                // no attachment: fine
        ] {
            l.insert(Pointer::with_info(
                NodeId(id),
                Addr(id as u64),
                Level::new(level),
                bytes,
            ));
        }
        l
    }

    fn publish(list: &PeerList) -> SnapshotReader {
        let mut p = SnapshotPublisher::new();
        p.maybe_publish_list(
            NodeIdentity::new(NodeId(99), Level::new(0)),
            Addr(99),
            list,
            1_000,
        );
        p.reader()
    }

    #[test]
    fn prepared_queries_match_select_on_same_content() {
        let list = seeded_list();
        let ps = PreparedSnapshot::prepare(publish(&list).load());

        let sel: Vec<u128> = select::find_partners(&list, |_, i| i.get_str("os") == Some("linux"))
            .map(|p| p.id.raw())
            .collect();
        let eng: Vec<u128> = ps
            .partners_eq("os", "linux", usize::MAX)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(sel, eng);
        // Limits page in id order: a prefix of the full result.
        let limited: Vec<u128> = ps
            .partners_eq("os", "linux", 1)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(limited, sel[..1]);
        let scan: Vec<u128> = ps
            .find_partners(|_, i| i.get_str("os") == Some("linux"))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(sel, scan);

        let sel: Vec<u128> = select::k_smallest_by(&list, "load", 2)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        let eng: Vec<u128> = ps
            .k_smallest_by("load", 2)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(sel, eng);

        let sel: Vec<u128> = select::strongest_nodes(&list, 3)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        let eng: Vec<u128> = ps.strongest(3).iter().map(|p| p.id.raw()).collect();
        assert_eq!(sel, eng);

        let sel: Vec<u128> = select::probable_holders(&list, b"doc-42")
            .iter()
            .map(|p| p.id.raw())
            .collect();
        let eng: Vec<u128> = ps
            .probable_holders(b"doc-42")
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(sel, eng);
        assert_eq!(sel, vec![4]);
    }

    #[test]
    fn decode_errors_are_counted_not_swallowed() {
        let list = seeded_list();
        // Node 5's garbage info is an error; node 6's empty info and node
        // 4's bloom are not.
        let ps = PreparedSnapshot::prepare(publish(&list).load());
        assert_eq!(ps.decode_errors(), 1);
    }

    #[test]
    fn engine_refresh_tracks_epochs_and_diagnostics() {
        let mut list = seeded_list();
        let mut publisher = SnapshotPublisher::new();
        let me = NodeIdentity::new(NodeId(99), Level::new(0));
        publisher.maybe_publish_list(me, Addr(99), &list, 1_000);
        let engine = QueryEngine::new(publisher.reader());
        assert_eq!(engine.prepared().epoch(), 1);
        assert_eq!(engine.decode_errors_total(), 1);
        assert!(!engine.refresh(), "no new epoch yet");

        list.remove(NodeId(5)); // the rot leaves the network
        publisher.maybe_publish_list(me, Addr(99), &list, 2_000);
        assert!(engine.refresh());
        let ps = engine.prepared();
        assert_eq!(ps.epoch(), 2);
        assert_eq!(ps.decode_errors(), 0);
        assert_eq!(engine.decode_errors_total(), 1);

        let diags = engine.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            diags[0].kind,
            TraceEventKind::Diag {
                code: DiagCode::InfoDecodeError
            }
        ));
        assert!(engine.take_diagnostics().is_empty(), "drained");
    }

    #[test]
    fn plans_are_reusable_across_epochs() {
        let mut list = seeded_list();
        let mut publisher = SnapshotPublisher::new();
        let me = NodeIdentity::new(NodeId(99), Level::new(0));
        publisher.maybe_publish_list(me, Addr(99), &list, 1_000);
        let engine = QueryEngine::new(publisher.reader());

        let plan = QueryPlan::holders(b"doc-42");
        let ids = |v: Vec<Pointer>| v.iter().map(|p| p.id.raw()).collect::<Vec<_>>();
        assert_eq!(ids(engine.execute(&plan)), vec![4]);

        list.remove(NodeId(4));
        publisher.maybe_publish_list(me, Addr(99), &list, 2_000);
        engine.refresh();
        assert!(engine.execute(&plan).is_empty());

        let strongest = QueryPlan::Strongest { k: 2 };
        assert_eq!(ids(engine.execute(&strongest)), vec![1, 2]);
    }
}
