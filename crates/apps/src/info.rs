//! A compact typed schema for pointer attached-info (§3).
//!
//! "Some applications need to exchange some brief information among the
//! nodes. They can directly attach the information into the pointers":
//! GUESS attaches shared-file counts, backup systems attach OS versions,
//! bidding systems attach storage/bandwidth/price. [`InfoMap`] gives those
//! applications a tiny key-value encoding with a canonical byte form —
//! pointers must stay small ("large pointers will finally deflate the
//! peer lists"), so values are length-limited and the encoder is
//! deliberately simple: sorted keys, TLV fields, no compression.
//!
//! Wire form per field: `key_len:u8 key value_tag:u8 value`, fields sorted
//! by key; values are `u64`, `f64`, or short byte strings.

use bytes::Bytes;
use std::collections::BTreeMap;

/// Maximum encoded size accepted (keeps pointers small; 512 bytes is
/// already 4× the paper's whole event message).
pub const MAX_ENCODED: usize = 512;

/// A typed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned counter (file counts, free megabytes, …).
    U64(u64),
    /// Floating measurement (load, price, availability …).
    F64(f64),
    /// Short opaque string (OS tag, version, …), ≤ 255 bytes.
    Str(String),
}

/// Decode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InfoError {
    /// Input ended mid-field.
    Truncated,
    /// Unknown value tag.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Encoded form exceeds [`MAX_ENCODED`].
    TooLarge,
}

/// An ordered key-value map with a canonical byte encoding.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InfoMap {
    fields: BTreeMap<String, Value>,
}

impl InfoMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a counter field.
    pub fn set_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.insert(key.to_string(), Value::U64(v));
        self
    }

    /// Sets a float field.
    pub fn set_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.insert(key.to_string(), Value::F64(v));
        self
    }

    /// Sets a string field (truncated to 255 bytes).
    pub fn set_str(&mut self, key: &str, v: &str) -> &mut Self {
        let mut s = v.to_string();
        s.truncate(255);
        self.fields.insert(key.to_string(), Value::Str(s));
        self
    }

    /// Reads a counter field.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.fields.get(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a float field.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a string field.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(Value::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates fields in canonical (key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> + '_ {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Canonical encoding, suitable for a pointer's attached info.
    ///
    /// # Errors
    /// [`InfoError::TooLarge`] when the encoding exceeds [`MAX_ENCODED`].
    pub fn encode(&self) -> Result<Bytes, InfoError> {
        let mut out = Vec::with_capacity(64);
        for (k, v) in &self.fields {
            let kb = k.as_bytes();
            let klen = kb.len().min(255);
            out.push(klen as u8);
            out.extend_from_slice(&kb[..klen]);
            match v {
                Value::U64(x) => {
                    out.push(0);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Value::F64(x) => {
                    out.push(1);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Value::Str(s) => {
                    out.push(2);
                    out.push(s.len() as u8);
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        if out.len() > MAX_ENCODED {
            return Err(InfoError::TooLarge);
        }
        Ok(Bytes::from(out))
    }

    /// Decodes a canonical encoding. Never panics on malformed input.
    pub fn decode(buf: &[u8]) -> Result<InfoMap, InfoError> {
        if buf.len() > MAX_ENCODED {
            return Err(InfoError::TooLarge);
        }
        let mut fields = BTreeMap::new();
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<usize, InfoError> {
            let start = *i;
            if buf.len() - start < n {
                return Err(InfoError::Truncated);
            }
            *i += n;
            Ok(start)
        };
        while i < buf.len() {
            let klen = buf[take(&mut i, 1)?] as usize;
            let ks = take(&mut i, klen)?;
            let key = std::str::from_utf8(&buf[ks..ks + klen])
                .map_err(|_| InfoError::BadUtf8)?
                .to_string();
            let tag = buf[take(&mut i, 1)?];
            let value = match tag {
                0 => {
                    let s = take(&mut i, 8)?;
                    Value::U64(u64::from_le_bytes(buf[s..s + 8].try_into().unwrap()))
                }
                1 => {
                    let s = take(&mut i, 8)?;
                    Value::F64(f64::from_le_bytes(buf[s..s + 8].try_into().unwrap()))
                }
                2 => {
                    let slen = buf[take(&mut i, 1)?] as usize;
                    let s = take(&mut i, slen)?;
                    Value::Str(
                        std::str::from_utf8(&buf[s..s + slen])
                            .map_err(|_| InfoError::BadUtf8)?
                            .to_string(),
                    )
                }
                t => return Err(InfoError::BadTag(t)),
            };
            fields.insert(key, value);
        }
        Ok(InfoMap { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_typed_fields() {
        let mut m = InfoMap::new();
        m.set_u64("files", 1234)
            .set_f64("load", 0.75)
            .set_str("os", "linux-6.1");
        let b = m.encode().unwrap();
        let d = InfoMap::decode(&b).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.get_u64("files"), Some(1234));
        assert_eq!(d.get_f64("load"), Some(0.75));
        assert_eq!(d.get_str("os"), Some("linux-6.1"));
        assert_eq!(d.get_u64("load"), None, "typed getters are type-safe");
    }

    #[test]
    fn encoding_is_canonical_regardless_of_insertion_order() {
        let mut a = InfoMap::new();
        a.set_u64("b", 1).set_u64("a", 2);
        let mut b = InfoMap::new();
        b.set_u64("a", 2).set_u64("b", 1);
        assert_eq!(a.encode().unwrap(), b.encode().unwrap());
    }

    #[test]
    fn size_limit_enforced() {
        let mut m = InfoMap::new();
        for i in 0..60 {
            m.set_str(&format!("key-{i}"), "0123456789");
        }
        assert_eq!(m.encode(), Err(InfoError::TooLarge));
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(InfoMap::decode(&[5]).is_err()); // truncated key
        assert!(InfoMap::decode(&[1, b'k', 9]).is_err()); // bad tag
        assert!(InfoMap::decode(&[1, 0xFF, 0]).is_err()); // bad utf8 key
        assert_eq!(InfoMap::decode(&[]).unwrap(), InfoMap::new());
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = InfoMap::decode(&data);
        }

        #[test]
        fn arbitrary_maps_roundtrip(
            keys in proptest::collection::vec("[a-z]{1,8}", 0..8),
            vals in proptest::collection::vec(any::<u64>(), 8),
        ) {
            let mut m = InfoMap::new();
            for (k, v) in keys.iter().zip(&vals) {
                m.set_u64(k, *v);
            }
            let b = m.encode().unwrap();
            prop_assert_eq!(InfoMap::decode(&b).unwrap(), m);
        }
    }
}
