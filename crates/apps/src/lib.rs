//! # peerwindow-apps
//!
//! The application layer §3 sketches on top of PeerWindow's attached
//! info: a compact typed [`info::InfoMap`] schema (GUESS file counts,
//! backup-system OS tags, bidding status), [`bloom`] filter attachments
//! (the LOCKSS document-advertisement pattern), and [`select`] — local
//! peer-selection queries over a collected peer list (partner search,
//! k-lightest load shedding, probable document holders, the
//! powerful-nodes level heuristic).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bloom;
pub mod info;
pub mod select;

pub use bloom::Bloom;
pub use info::{InfoError, InfoMap, Value};
pub use select::{find_partners, info_of, k_smallest_by, probable_holders, strongest_nodes};
