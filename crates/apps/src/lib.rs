//! # peerwindow-apps
//!
//! The application layer §3 sketches on top of PeerWindow's attached
//! info: a compact typed [`info::InfoMap`] schema (GUESS file counts,
//! backup-system OS tags, bidding status), [`bloom`] filter attachments
//! (the LOCKSS document-advertisement pattern), [`select`] — local
//! peer-selection queries over a collected peer list (partner search,
//! k-lightest load shedding, probable document holders, the
//! powerful-nodes level heuristic) — and [`query`], the serving-layer
//! version of [`select`]: a lock-free [`query::QueryEngine`] over
//! published peer-list snapshots with prepared indexes, reusable
//! [`query::QueryPlan`]s, and batched bloom evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bloom;
pub mod info;
pub mod query;
pub mod select;

pub use bloom::{Bloom, BloomProbe, BloomView};
pub use info::{InfoError, InfoMap, Value};
pub use query::{PreparedSnapshot, QueryEngine, QueryPlan};
pub use select::{
    find_partners, info_of, k_smallest_by, probable_holders, strongest_nodes, try_info_of,
};
