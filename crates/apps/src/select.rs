//! Peer-selection queries over a collected peer list.
//!
//! The whole point of collecting pointers (§1): "the more pointers a node
//! collects, the more satisfactory partners it may find locally". These
//! helpers implement the §1/§3 use cases as local queries: partners by
//! predicate over the typed info, k-lightest nodes for load balancing,
//! document holders through bloom attachments, and the "look at the level
//! value for powerful nodes" heuristic.

use crate::bloom::Bloom;
use crate::info::{InfoError, InfoMap};
use peerwindow_core::peer_list::PeerList;
use peerwindow_core::pointer::Pointer;

/// Decodes a pointer's attached info as an [`InfoMap`] (empty on decode
/// failure — foreign attachments are not ours to judge). Callers that
/// need to *observe* decode failures — the query engine's
/// `decode_errors` counter — use [`try_info_of`] instead.
pub fn info_of(p: &Pointer) -> InfoMap {
    try_info_of(p).unwrap_or_default()
}

/// Decodes a pointer's attached info as an [`InfoMap`], surfacing the
/// decode failure instead of swallowing it. Empty info decodes to an
/// empty map (absence of attachment is not rot).
pub fn try_info_of(p: &Pointer) -> Result<InfoMap, InfoError> {
    InfoMap::decode(&p.info)
}

/// All pointers whose decoded info satisfies `pred`.
pub fn find_partners<'a>(
    list: &'a PeerList,
    mut pred: impl FnMut(&Pointer, &InfoMap) -> bool + 'a,
) -> impl Iterator<Item = &'a Pointer> + 'a {
    list.iter().filter(move |p| pred(p, &info_of(p)))
}

/// The `k` pointers with the smallest value of `key` (load balancing,
/// cheapest-bid selection). Pointers without the field are skipped.
pub fn k_smallest_by<'a>(list: &'a PeerList, key: &str, k: usize) -> Vec<&'a Pointer> {
    let mut scored: Vec<(f64, &Pointer)> = list
        .iter()
        .filter_map(|p| info_of(p).get_f64(key).map(|v| (v, p)))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(_, p)| p).collect()
}

/// Pointers that *probably* hold `document`, judged from a bloom filter
/// attached under the raw info bytes (the LOCKSS pattern from §3).
/// False positives are possible; verify before relying on a holder.
pub fn probable_holders<'a>(list: &'a PeerList, document: &'a [u8]) -> Vec<&'a Pointer> {
    list.iter()
        .filter(|p| {
            Bloom::from_bytes(&p.info)
                .map(|f| f.maybe_contains(document))
                .unwrap_or(false)
        })
        .collect()
}

/// The §3 "powerful nodes" heuristic: pointers at the strongest levels
/// ("nodes with higher bandwidth also tend to stay longer and contribute
/// more resources"). Returns up to `k`, strongest level first.
pub fn strongest_nodes(list: &PeerList, k: usize) -> Vec<&Pointer> {
    let mut all: Vec<&Pointer> = list.iter().collect();
    all.sort_by_key(|p| (p.level.value(), p.id));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerwindow_core::prelude::*;

    fn list_with(entries: Vec<(u128, u8, bytes::Bytes)>) -> PeerList {
        let mut l = PeerList::new(Prefix::EMPTY);
        for (id, level, info) in entries {
            l.insert(Pointer::with_info(
                NodeId(id),
                Addr(id as u64),
                Level::new(level),
                info,
            ));
        }
        l
    }

    fn os_info(os: &str, load: f64) -> bytes::Bytes {
        let mut m = InfoMap::new();
        m.set_str("os", os).set_f64("load", load);
        m.encode().unwrap()
    }

    #[test]
    fn partners_by_predicate() {
        let l = list_with(vec![
            (1, 0, os_info("linux", 0.2)),
            (2, 1, os_info("windows", 0.9)),
            (3, 2, os_info("linux", 0.5)),
        ]);
        // Pastiche: same-OS partners for dedup.
        let same: Vec<u128> = find_partners(&l, |_, i| i.get_str("os") == Some("linux"))
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(same, vec![1, 3]);
        // Lillibridge: different-OS partners against correlated failure.
        let diff: Vec<u128> = find_partners(&l, |_, i| {
            i.get_str("os").is_some() && i.get_str("os") != Some("linux")
        })
        .map(|p| p.id.raw())
        .collect();
        assert_eq!(diff, vec![2]);
    }

    #[test]
    fn k_lightest_for_load_balancing() {
        let l = list_with(vec![
            (1, 0, os_info("a", 0.9)),
            (2, 0, os_info("b", 0.1)),
            (3, 0, os_info("c", 0.4)),
            (4, 0, bytes::Bytes::new()), // no load advertised: skipped
        ]);
        let picks = k_smallest_by(&l, "load", 2);
        let ids: Vec<u128> = picks.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn bloom_holders_query() {
        let mut holder_filter = Bloom::for_items(10, 0.01);
        holder_filter.insert(b"doc-42");
        let l = list_with(vec![
            (1, 0, holder_filter.to_bytes()),
            (2, 0, Bloom::for_items(10, 0.01).to_bytes()),
            (3, 0, bytes::Bytes::from_static(b"not a filter")),
        ]);
        let holders = probable_holders(&l, b"doc-42");
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].id.raw(), 1);
    }

    #[test]
    fn strongest_nodes_heuristic() {
        let l = list_with(vec![
            (10, 3, bytes::Bytes::new()),
            (20, 0, bytes::Bytes::new()),
            (30, 1, bytes::Bytes::new()),
            (40, 0, bytes::Bytes::new()),
        ]);
        let ids: Vec<u128> = strongest_nodes(&l, 3).iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![20, 40, 30]);
    }
}
