//! Statistical and equivalence guarantees for the bloom attachment
//! layer (PR 10's query-correctness tier):
//!
//! * the measured false-positive rate stays within 2× of the analytic
//!   `(1 − e^{−kn/m})^k` bound for every sizing the attachment budget
//!   allows;
//! * the double-hash function is pinned by regression vectors — a silent
//!   change would strand every filter already serialized into attached
//!   info across the network;
//! * the batched probe path (`PreparedSnapshot::probable_holders`) is
//!   result-identical to the per-pointer decode path
//!   (`select::probable_holders`) on arbitrary pointer populations,
//!   proven by proptest.

use bytes::Bytes;
use peerwindow_apps::bloom::Bloom;
use peerwindow_apps::query::{PreparedSnapshot, QueryPlan};
use peerwindow_apps::select;
use peerwindow_core::peer_list::PeerList;
use peerwindow_core::prelude::*;
use proptest::prelude::*;

/// The standard false-positive estimate for a bloom filter of `m` bits
/// and `k` probes holding `n` items.
fn analytic_fp(m_bits: f64, k: f64, n: f64) -> f64 {
    (1.0 - (-k * n / m_bits).exp()).powf(k)
}

#[test]
fn measured_fp_rate_is_within_twice_the_analytic_bound() {
    // (items, target fp): spans the attachment-budget range from a tight
    // 1% filter to an overloaded 10% one.
    const TRIALS: usize = 50_000;
    for &(n, target) in &[(100usize, 0.01f64), (500, 0.02), (1000, 0.1)] {
        let mut f = Bloom::for_items(n, target);
        for i in 0..n {
            f.insert(format!("present-{i}").as_bytes());
        }
        let m_bits = (f.byte_len() * 8) as f64;
        let analytic = analytic_fp(m_bits, f.k() as f64, n as f64);
        let hits = (0..TRIALS)
            .filter(|i| f.maybe_contains(format!("absent-{i}").as_bytes()))
            .count();
        let measured = hits as f64 / TRIALS as f64;
        // Upper: the 2× acceptance bound, plus three binomial sigmas of
        // sampling slack so the gate doesn't flake at these trial counts.
        let sigma = (analytic * (1.0 - analytic) / TRIALS as f64).sqrt();
        assert!(
            measured <= 2.0 * analytic + 3.0 * sigma,
            "n={n} target={target}: measured fp {measured:.5} exceeds \
             2×analytic {analytic:.5} (m={m_bits}, k={})",
            f.k()
        );
        // Lower sanity (only where the expected hit count is resolvable):
        // a filter measuring far *below* the analytic rate means the
        // probes collapsed onto few distinct bits and the test lost its
        // subject.
        if analytic * TRIALS as f64 >= 100.0 {
            assert!(
                measured >= analytic / 4.0,
                "n={n} target={target}: measured fp {measured:.5} \
                 implausibly below analytic {analytic:.5}"
            );
        }
    }
}

#[test]
fn no_false_negatives_at_any_tested_sizing() {
    for &(n, target) in &[(100usize, 0.01f64), (500, 0.02), (1000, 0.1)] {
        let mut f = Bloom::for_items(n, target);
        let items: Vec<String> = (0..n).map(|i| format!("present-{i}")).collect();
        for it in &items {
            f.insert(it.as_bytes());
        }
        for it in &items {
            assert!(f.maybe_contains(it.as_bytes()), "false negative on {it}");
        }
    }
}

/// The double-hash bases are wire format: filters serialized into
/// attached info only stay readable if `Bloom::probe` computes exactly
/// these values forever. (h2 is forced odd so it is coprime with any
/// power-of-two bit count.)
#[test]
fn double_hash_regression_vectors_are_pinned() {
    for &(item, h1, h2) in &[
        ("", 0xcbf29ce484222325u64, 0x84222325cbf29ce5u64),
        ("doc-42", 0x8c56e1546327e0b2, 0xb46754bb409dd47f),
        ("peerwindow", 0x0d60463647faebb9, 0x44dbf9bd0021c4ff),
        ("a", 0xaf63dc4c8601ec8c, 0x80e2848525252f09),
        (
            "the quick brown fox",
            0x59aeb7b40bd8c122,
            0xd370c8c741dd7e43,
        ),
    ] {
        let probe = Bloom::probe(item.as_bytes());
        assert_eq!(probe.h1, h1, "h1 drifted for {item:?}");
        assert_eq!(probe.h2, h2, "h2 drifted for {item:?}");
        assert_eq!(probe.h2 % 2, 1, "h2 must be odd for {item:?}");
    }
}

/// What one generated pointer carries as attached info.
#[derive(Clone, Debug)]
enum Attachment {
    /// A bloom filter over `docs.len()` synthetic documents, where each
    /// element is a document index into a shared universe.
    Filter { docs: Vec<u8>, fp_millis: u8 },
    /// Undecodable bytes (foreign attachment rot).
    Garbage(Vec<u8>),
    /// No attachment at all.
    Empty,
}

fn arb_attachment() -> impl Strategy<Value = Attachment> {
    prop_oneof![
        (proptest::collection::vec(any::<u8>(), 0..12), 1u8..=100u8)
            .prop_map(|(docs, fp_millis)| Attachment::Filter { docs, fp_millis }),
        proptest::collection::vec(any::<u8>(), 0..6).prop_map(Attachment::Garbage),
        Just(Attachment::Empty),
    ]
}

fn doc_name(i: u8) -> String {
    format!("doc-{i}")
}

fn build_list(attachments: &[Attachment]) -> PeerList {
    let mut list = PeerList::new(Prefix::EMPTY);
    for (slot, a) in attachments.iter().enumerate() {
        let bytes = match a {
            Attachment::Filter { docs, fp_millis } => {
                let mut f = Bloom::for_items(docs.len().max(1), *fp_millis as f64 / 1000.0);
                for &d in docs {
                    f.insert(doc_name(d).as_bytes());
                }
                f.to_bytes()
            }
            Attachment::Garbage(b) => Bytes::from(b.clone()),
            Attachment::Empty => Bytes::new(),
        };
        let id = NodeId(1 + slot as u128);
        list.insert(Pointer::with_info(
            id,
            Addr(slot as u64),
            Level::new((slot % 5) as u8),
            bytes,
        ));
    }
    list
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The PR's batched bloom evaluation — one precomputed probe swept
    /// across every bloom-bearing pointer of a prepared snapshot — must
    /// return exactly what the per-pointer decode-then-test path
    /// returns, on any mix of filters, garbage, and empty attachments.
    #[test]
    fn batched_holders_equals_per_pointer_path(
        attachments in proptest::collection::vec(arb_attachment(), 0..24),
        query_doc in any::<u8>(),
    ) {
        let list = build_list(&attachments);
        let doc = doc_name(query_doc);

        // Reference: the select per-pointer path (full deserialization
        // and item hashing per pointer, straight off the live list).
        let reference: Vec<u128> = select::probable_holders(&list, doc.as_bytes())
            .iter()
            .map(|p| p.id.raw())
            .collect();

        // Batched: publish → prepare → one probe over the bloom subset.
        let mut publisher = SnapshotPublisher::new();
        publisher.maybe_publish_list(
            NodeIdentity::new(NodeId(u128::MAX), Level::new(0)),
            Addr(u64::MAX),
            &list,
            1,
        );
        let ps = PreparedSnapshot::prepare(publisher.reader().load());
        let batched: Vec<u128> = ps
            .probable_holders(doc.as_bytes())
            .iter()
            .map(|p| p.id.raw())
            .collect();
        prop_assert_eq!(&reference, &batched);

        // And the compiled plan (probe hashed once at build time) agrees.
        let plan = QueryPlan::holders(doc.as_bytes());
        let planned: Vec<u128> = plan.execute(&ps).iter().map(|p| p.id.raw()).collect();
        prop_assert_eq!(&reference, &planned);

        // No false negatives end to end: every pointer whose filter
        // actually holds the queried document is in the result.
        for (slot, a) in attachments.iter().enumerate() {
            if let Attachment::Filter { docs, .. } = a {
                if docs.contains(&query_doc) {
                    let id = 1 + slot as u128;
                    prop_assert!(
                        batched.contains(&id),
                        "holder {id} missing for {doc}"
                    );
                }
            }
        }
    }
}
