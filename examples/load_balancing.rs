//! Load balancing over collected pointers (the Godfrey et al. use case
//! from §1).
//!
//! Heavily-loaded nodes must find lightly-loaded ones to shed work. With
//! PeerWindow each node attaches its current load to its pointer and
//! *changes its info* when the load moves (§3) — the multicast keeps
//! everyone's view fresh, so transfer decisions are made locally. This
//! example runs the full protocol, perturbs loads at runtime, and
//! measures how good the locally-chosen transfer target is compared to
//! the true global optimum.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::metrics::{fmt_f64, Table};
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

fn load_of(info: &[u8]) -> f64 {
    std::str::from_utf8(info)
        .ok()
        .and_then(|s| s.strip_prefix("load:"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(f64::MAX)
}

fn main() {
    let mut rng = DetRng::new(11);
    let protocol = ProtocolConfig {
        probe_interval_us: 5_000_000,
        rpc_timeout_us: 1_000_000,
        processing_delay_us: 50_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(protocol, Box::new(UniformNetwork { latency_us: 30_000 }), 5);

    println!("== load balancing with live attached info ==\n");
    let n = 70;
    let mut loads: Vec<f64> = Vec::new();
    let l0 = (rng.next_f64() * 100.0 * 100.0).round() / 100.0;
    sim.spawn_seed(
        NodeId(rng.next_u128()),
        1e9,
        Bytes::from(format!("load:{l0}")),
    );
    loads.push(l0);
    let mut slots = vec![0u32];
    for _ in 1..n {
        sim.run_for(200_000);
        let l = (rng.next_f64() * 100.0 * 100.0).round() / 100.0;
        let slot = sim
            .spawn_joiner(
                NodeId(rng.next_u128()),
                1e9,
                Bytes::from(format!("load:{l}")),
            )
            .unwrap();
        loads.push(l);
        slots.push(slot);
    }
    sim.run_until(SimTime::from_secs(40));

    // Perturb a third of the loads at runtime — the InfoChange multicast
    // must propagate the new values.
    println!("perturbing 1/3 of the loads at runtime …");
    for k in 0..n / 3 {
        let slot = slots[k * 3];
        let l = (rng.next_f64() * 100.0 * 100.0).round() / 100.0;
        loads[k * 3] = l;
        sim.set_info_after(slot, (k as u64) * 100_000, Bytes::from(format!("load:{l}")));
    }
    sim.run_until(SimTime::from_secs(80));

    // Ground truth: the lightest node in the system.
    let truth: Vec<(NodeId, f64)> = sim
        .machines()
        .map(|(_, m)| (m.id(), load_of(m.info())))
        .collect();
    let global_min = truth.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);

    // Every overloaded node (load > 80) picks its transfer target from
    // its own peer list; how close to optimal is the local choice?
    let mut t = Table::new([
        "overloaded node",
        "own load",
        "local pick",
        "picked load",
        "global min",
    ]);
    let mut regret = 0.0;
    let mut count = 0;
    for (_, m) in sim.machines() {
        let own = load_of(m.info());
        if own <= 80.0 {
            continue;
        }
        let pick = m
            .peers()
            .iter()
            .min_by(|a, b| load_of(&a.info).partial_cmp(&load_of(&b.info)).unwrap());
        let Some(pick) = pick else { continue };
        let picked_load = load_of(&pick.info);
        regret += picked_load - global_min;
        count += 1;
        if count <= 8 {
            t.row([
                m.id().to_string()[..8].to_string(),
                fmt_f64(own),
                pick.id.to_string()[..8].to_string(),
                fmt_f64(picked_load),
                fmt_f64(global_min),
            ]);
        }
    }
    println!("\n{}", t.to_markdown());
    println!(
        "{} overloaded nodes; mean regret vs global optimum: {:.3} load units",
        count,
        if count > 0 {
            regret / count as f64
        } else {
            0.0
        }
    );
    println!("\nAt level 0 the local pick IS the global optimum (the peer list");
    println!("covers everything). Deeper levels trade optimality for bandwidth —");
    println!("that is exactly the paper's heterogeneity story.");
}
