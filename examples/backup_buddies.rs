//! Cooperative-backup partner search (the Pastiche / Lillibridge use case
//! from §1 and §3).
//!
//! Backup systems want partners with a *different* operating system (to
//! survive OS-targeted worms) or the *same* one (to deduplicate common
//! files). PeerWindow makes both searches local: each node attaches its
//! OS tag to its pointers (§3 "directly using the attached info"), so a
//! node just scans its own peer list. This example measures how partner
//! choice improves with peer-list size — the paper's core argument for
//! collecting many pointers.
//!
//! ```text
//! cargo run --release --example backup_buddies
//! ```

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::metrics::Table;
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::UniformNetwork;

const OSES: [&str; 4] = ["linux", "windows", "macos", "bsd"];
// Skewed popularity, like reality.
const WEIGHTS: [u64; 4] = [20, 60, 15, 5];

fn pick_os(rng: &mut DetRng) -> &'static str {
    let total: u64 = WEIGHTS.iter().sum();
    let mut x = rng.below(total);
    for (os, w) in OSES.iter().zip(WEIGHTS) {
        if x < w {
            return os;
        }
        x -= w;
    }
    OSES[0]
}

fn main() {
    let mut rng = DetRng::new(7);
    let protocol = ProtocolConfig {
        probe_interval_us: 5_000_000,
        rpc_timeout_us: 1_000_000,
        processing_delay_us: 50_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(protocol, Box::new(UniformNetwork { latency_us: 40_000 }), 3);

    println!("== backup buddies: OS tags in attached info ==\n");
    // 80 nodes: half are strong (level 0), half weak. We emulate weak
    // nodes by giving them tiny thresholds so they settle deeper and see
    // fewer candidates — the heterogeneity trade-off in action.
    let seed_os = pick_os(&mut rng);
    sim.spawn_seed(
        NodeId(rng.next_u128()),
        1e9,
        Bytes::from(format!("os:{seed_os}")),
    );
    for _ in 0..79 {
        sim.run_for(200_000);
        let os = pick_os(&mut rng);
        sim.spawn_joiner(
            NodeId(rng.next_u128()),
            1e9,
            Bytes::from(format!("os:{os}")),
        );
    }
    sim.run_until(SimTime::from_secs(60));
    println!("{} nodes active\n", sim.live_count());

    // Every node searches its own peer list for partners.
    let mut t = Table::new([
        "node",
        "own OS",
        "list size",
        "same-OS partners",
        "diff-OS partners",
    ]);
    let mut failures = 0;
    for (i, (_, m)) in sim.machines().enumerate() {
        let own = String::from_utf8_lossy(m.info()).to_string();
        let same = m
            .peers()
            .iter()
            .filter(|p| p.info == m.info().clone())
            .count();
        let diff = m.peers().len() - same;
        if same == 0 || diff == 0 {
            failures += 1;
        }
        if i < 10 {
            t.row([
                m.id().to_string()[..8].to_string(),
                own.trim_start_matches("os:").to_string(),
                m.peers().len().to_string(),
                same.to_string(),
                diff.to_string(),
            ]);
        }
    }
    println!("{}", t.to_markdown());
    println!("nodes unable to find BOTH a same-OS and a diff-OS partner locally: {failures}");
    println!("\nWith PeerWindow every node answered from its own peer list — zero");
    println!("search messages. A 100-entry routing table would have required");
    println!("flooding or random walks for the rarer OSes (weight 5/100).");

    // The locality argument, quantified: probability that a k-pointer
    // sample contains a bsd partner.
    let p_bsd: f64 = 5.0 / 100.0;
    let mut t = Table::new(["pointers collected", "P(find a bsd partner locally)"]);
    for k in [10usize, 50, 100, 500, 1_000] {
        let p = 1.0 - (1.0 - p_bsd).powi(k as i32);
        t.row([k.to_string(), format!("{:.4}", p)]);
    }
    println!("\n{}", t.to_markdown());
}
