//! LOCKSS-style document location through bloom-filter attachments
//! (§3's "using compression techniques to express more info").
//!
//! Every node advertises its document collection as a ~128-byte Bloom
//! filter inside its pointer. Finding replicas of a document is then a
//! *local* scan of the peer list — no query messages at all — followed by
//! one verification round-trip per probable holder.
//!
//! ```text
//! cargo run --release --example document_search
//! ```

use peerwindow::apps::{probable_holders, Bloom};
use peerwindow::des::DetRng;
use peerwindow::metrics::{fmt_f64, Table};
use peerwindow::prelude::*;

fn main() {
    println!("== document search over bloom-filter attachments ==\n");
    let mut rng = DetRng::new(2026);
    // A 2,000-node membership; each node holds 40–200 documents drawn
    // from a 20,000-title universe with Zipf-ish popularity.
    let n_nodes = 2_000usize;
    let universe = 20_000u64;
    let mut list = PeerList::new(Prefix::EMPTY);
    let mut truth: Vec<(NodeId, Vec<u64>)> = Vec::new();
    for _ in 0..n_nodes {
        let id = NodeId(rng.next_u128());
        let n_docs = 40 + rng.below(160) as usize;
        let mut docs = Vec::with_capacity(n_docs);
        let mut filter = Bloom::for_items(200, 0.01);
        for _ in 0..n_docs {
            // popularity ∝ 1/rank: squaring a uniform skews low.
            let d = ((rng.next_f64() * rng.next_f64()) * universe as f64) as u64;
            filter.insert(&d.to_le_bytes());
            docs.push(d);
        }
        list.insert(Pointer::with_info(
            id,
            Addr(0),
            Level::TOP,
            filter.to_bytes(),
        ));
        truth.push((id, docs));
    }
    println!(
        "{} nodes, each advertising its collection in a {}-byte filter\n",
        n_nodes,
        Bloom::for_items(200, 0.01).to_bytes().len()
    );

    // Query 300 documents: local filter scan, then verify against truth.
    let mut t = Table::new(["metric", "value"]);
    let queries = 300u64;
    let mut found = 0usize;
    let mut candidates_total = 0usize;
    let mut false_positives = 0usize;
    for q in 0..queries {
        let doc = ((q as f64 / queries as f64).powi(2) * universe as f64) as u64;
        let key = doc.to_le_bytes();
        let cands = probable_holders(&list, &key);
        candidates_total += cands.len();
        let mut any = false;
        for c in &cands {
            let really = truth
                .iter()
                .find(|(id, _)| *id == c.id)
                .map(|(_, docs)| docs.contains(&doc))
                .unwrap_or(false);
            if really {
                any = true;
            } else {
                false_positives += 1;
            }
        }
        if any {
            found += 1;
        }
    }
    t.row([String::from("queries"), queries.to_string()]);
    t.row([String::from("answered locally"), found.to_string()]);
    t.row([
        String::from("candidates per query"),
        fmt_f64(candidates_total as f64 / queries as f64),
    ]);
    t.row([
        String::from("filter false positives / query"),
        fmt_f64(false_positives as f64 / queries as f64),
    ]);
    t.row([
        String::from("query messages sent"),
        String::from("0 (list scan) + 1 verify per candidate"),
    ]);
    println!("{}", t.to_markdown());
    println!("\nWithout PeerWindow the same search floods or walks the overlay;");
    println!("with it, the entire lookup is a scan of state the node already");
    println!("pays ~0.5 kbps per 1000 pointers to keep fresh.");
}
