//! GUESS-style non-forwarding search (§1, §3; Yang et al. [19]).
//!
//! GUESS answers file-sharing queries *without forwarding*: a node probes
//! candidates straight from its own pointer collection, so the local hit
//! rate grows with the number of pointers collected. This example attaches
//! per-node shared-file counts to pointers, then measures the probability
//! that a query can be satisfied by some node already in the querier's
//! peer list — as a function of the querier's level.
//!
//! ```text
//! cargo run --release --example guess_search
//! ```

use peerwindow::des::DetRng;
use peerwindow::metrics::{fmt_f64, Table};
use peerwindow::prelude::*;
use peerwindow::protocol::model::ModelParams;

/// Zipf-ish file popularity: file `f` is held by a node with probability
/// `p0 / (1 + f)`.
fn holds(rng: &mut DetRng, file: u32, shared_files: u32) -> bool {
    let p = (shared_files as f64 / 300.0) / (1.0 + file as f64);
    rng.next_f64() < p.min(1.0)
}

fn main() {
    println!("== GUESS non-forwarding search over collected pointers ==\n");
    // Synthesize a 50,000-node membership with shared-file counts drawn
    // from a heavy-tailed distribution (most nodes share little; a few
    // share thousands — the classic Gnutella free-riding shape).
    let n = 50_000usize;
    let mut rng = DetRng::new(99);
    let mut members: Vec<(NodeId, u32)> = Vec::with_capacity(n);
    for _ in 0..n {
        let shared = (10.0 * (1.0 / (1.0 - rng.next_f64())).powf(0.7)) as u32;
        members.push((NodeId(rng.next_u128()), shared.min(5_000)));
    }
    members.sort_by_key(|&(id, _)| id);

    // A querier at level l sees the n / 2^l members sharing its prefix.
    // Query workload: 200 files of decreasing popularity.
    let model = ModelParams::default();
    let mut t = Table::new([
        "querier level",
        "peer list size",
        "collection cost (bps)",
        "local hit rate",
    ]);
    let querier = members[n / 2].0;
    for level in [0u8, 2, 4, 6, 8, 10] {
        let scope = querier.prefix(level);
        let visible: Vec<&(NodeId, u32)> = members
            .iter()
            .filter(|(id, _)| scope.contains(*id))
            .collect();
        let mut hits = 0;
        let queries = 400;
        let mut qrng = DetRng::for_stream(4242, level as u64);
        for _q in 0..queries {
            let file = (qrng.next_f64() * qrng.next_f64() * 200.0) as u32;
            let hit = visible
                .iter()
                .take(4_000) // GUESS probes a bounded candidate set
                .any(|&&(_, shared)| holds(&mut qrng, file, shared));
            if hit {
                hits += 1;
            }
        }
        t.row([
            format!("L{level}"),
            visible.len().to_string(),
            fmt_f64(model.cost_bps(visible.len() as f64)),
            format!("{:.3}", hits as f64 / queries as f64),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("\nThe hit rate climbs with the peer list while the maintenance cost");
    println!("stays in the hundreds of bps — the §2 efficiency claim, seen from");
    println!("the application side. A node picks the level whose cost it can pay");
    println!("and gets the corresponding hit rate: heterogeneity as a dial.");
}
