//! Split PeerWindow (§4.4): when no node can afford level 0.
//!
//! In a very large or very dynamic system, nobody pays for a full-system
//! peer list; the system splits into independent parts — one per minimal
//! eigenstring — each a complete PeerWindow with its own top nodes. This
//! example builds such a membership, verifies the parts with [`PartMap`],
//! and shows that a multicast initiated in one part never crosses into
//! another (the parts are "wholly unrelated").
//!
//! ```text
//! cargo run --release --example split_system
//! ```

use peerwindow::des::DetRng;
use peerwindow::metrics::Table;
use peerwindow::prelude::*;
use peerwindow::protocol::model::ModelParams;

fn main() {
    println!("== split PeerWindow: life without level-0 nodes ==\n");

    // Why splits happen: at N = 10M with 13.5-minute lifetimes, level 0
    // costs ~37 Mbps of events — nobody volunteers.
    let model = ModelParams {
        lifetime_s: 13.5 * 60.0,
        ..ModelParams::default()
    };
    println!(
        "at N = 10,000,000 and 13.5-min lifetimes, a level-0 list costs {:.1} Mbps;",
        model.cost_bps(10_000_000.0) / 1e6
    );
    println!(
        "even a 100 Mbps node budgeting 1% (1 Mbps) settles at level {}\n",
        model.stable_level(10_000_000.0, 1_000_000.0)
    );

    // Build a membership where the strongest nodes are at level 2: the
    // system splits into (up to) four parts "00", "01", "10", "11".
    let mut rng = DetRng::new(5);
    let mut members = Vec::new();
    for _ in 0..400 {
        let id = NodeId(rng.next_u128());
        let level = Level::new(2 + (rng.below(3) as u8)); // levels 2..4
        members.push(NodeIdentity::new(id, level));
    }
    let parts = PartMap::from_members(&members);
    println!(
        "the {}-node membership splits into {} parts:",
        members.len(),
        parts.count()
    );
    let mut t = Table::new(["part prefix", "members", "top nodes"]);
    for &p in parts.parts() {
        let in_part = members.iter().filter(|m| p.contains(m.id)).count();
        let tops = members
            .iter()
            .filter(|m| parts.is_top(**m))
            .filter(|m| p.contains(m.id))
            .count();
        t.row([format!("\"{p}\""), in_part.to_string(), tops.to_string()]);
    }
    println!("\n{}", t.to_markdown());

    // Multicast confinement: build the ground-truth view, pick a subject
    // in part "00…", plan the tree, and verify every receiver shares the
    // subject's part.
    let mut view = PeerList::new(Prefix::EMPTY);
    for m in &members {
        view.insert(Pointer::new(m.id, Addr(0), m.level));
    }
    let subject = members
        .iter()
        .find(|m| !m.level.is_top() && m.id.raw() >> 126 == 0) // id starts "00"
        .expect("someone in part 00");
    let subject_part = parts.part_of(subject.id).unwrap();
    // The root is a top node of the subject's part; its responsibility
    // range starts at its own level (§4.4).
    let root = members
        .iter()
        .filter(|m| parts.is_top(**m) && subject_part.contains(m.id))
        .min_by_key(|m| m.id)
        .unwrap();
    let edges = plan_tree(&view, root.id, root.level.value(), subject.id);
    let crossings = edges
        .iter()
        .filter(|e| parts.part_of(e.to.id) != Some(subject_part))
        .count();
    let audience = members
        .iter()
        .filter(|m| m.covers(subject.id) && m.id != root.id && m.id != subject.id)
        .count();
    println!(
        "multicast about {} (part \"{}\"): {} receivers, {} part crossings (audience: {})",
        &subject.id.to_string()[..8],
        subject_part,
        edges.len(),
        crossings,
        audience,
    );
    assert_eq!(crossings, 0, "a part is wholly independent (§4.4)");
    assert_eq!(edges.len(), audience, "and completely covered");

    println!("\ncross-part bootstrap (§4.4): a joiner whose bootstrap node lives in");
    println!("another part asks a top node there; that top's top-node list holds");
    println!("t pointers per foreign part — the joiner reaches its own tops in one");
    println!("extra hop. See NodeMachine::on_find_top_reply for the implementation.");
}
