//! Quickstart: a 60-node PeerWindow coming to life.
//!
//! Runs a full-fidelity simulation (every node executes the real protocol
//! state machine): nodes join through the §4.3 process, collect peer
//! lists, a few crash and are detected by ring probing (§4.1), and the
//! tree multicast (§4.2) keeps everyone's list consistent.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use peerwindow::des::{DetRng, SimTime};
use peerwindow::metrics::Table;
use peerwindow::prelude::*;
use peerwindow::sim::FullSim;
use peerwindow::topology::{Topology, TransitStubNetwork, TransitStubParams};

fn main() {
    // A small transit-stub internet (the paper's latency constants).
    let topo = Topology::generate(TransitStubParams::small(), 7);
    let net = TransitStubNetwork::build(&topo);
    let protocol = ProtocolConfig {
        probe_interval_us: 5_000_000, // probe the ring successor every 5 s
        rpc_timeout_us: 1_000_000,    // 3 × 1 s to declare a node dead
        processing_delay_us: 100_000, // fast hops for a small demo
        bandwidth_window_us: 20_000_000,
        ..ProtocolConfig::default()
    };
    let mut sim = FullSim::new(protocol, Box::new(net), 1);
    let mut rng = DetRng::new(2026);

    println!("== PeerWindow quickstart: 60 nodes, full protocol fidelity ==\n");
    sim.spawn_seed(NodeId(rng.next_u128()), 1e9, Bytes::new());
    let mut slots = Vec::new();
    for i in 0..59 {
        sim.run_for(1_000_000); // one join per second
        let slot = sim
            .spawn_joiner(NodeId(rng.next_u128()), 1e9, Bytes::new())
            .expect("someone alive to bootstrap from");
        slots.push(slot);
        let _ = i;
    }
    sim.run_until(SimTime::from_secs(90));
    println!(
        "after 90 s: {} nodes active, {} joins completed",
        sim.live_count(),
        sim.log().joined.len()
    );
    let (correct, missing, stale) = sim.accuracy();
    println!("peer-list accuracy: {correct} required pointers, {missing} missing, {stale} stale\n");

    // Crash three nodes silently; §4.1 probing must detect them and the
    // multicast must purge them from every list.
    for &victim in &slots[10..13] {
        println!(
            "crashing node {} (silently)",
            sim.machine(victim).unwrap().id()
        );
        sim.crash_after(victim, 0);
    }
    sim.run_until(SimTime::from_secs(150));
    let (correct, missing, stale) = sim.accuracy();
    println!(
        "\nafter detection: {} nodes active, {} failures detected",
        sim.live_count(),
        sim.log().failures.len()
    );
    println!("peer-list accuracy: {correct} required pointers, {missing} missing, {stale} stale\n");

    // Show a few peer lists.
    let mut t = Table::new(["node", "level", "eigenstring", "peer-list size"]);
    for (_, m) in sim.machines().take(8) {
        t.row([
            m.id().to_string()[..8].to_string(),
            m.level().to_string(),
            format!("\"{}\"", m.eigenstring()),
            m.peers().len().to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("every node at level 0 sees the entire system — try lowering the");
    println!("threshold passed to spawn_joiner to watch weak nodes pick deeper levels.");
}
