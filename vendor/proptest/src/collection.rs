//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification: exact, `a..b`, or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
