//! Test-runner plumbing: config, RNG, and case errors.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: regenerate, do not count as a failure.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a string (stable per-test seed derivation).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
