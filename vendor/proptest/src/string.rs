//! String strategies from a small regex-like pattern language.
//!
//! A `&'static str` is itself a strategy (as in real proptest, where the
//! pattern is a full regex). The stub supports the subset the workspace
//! uses: literal characters, character classes `[a-z0-9_]` with ranges,
//! and `{n}` / `{m,n}` repetition suffixes, e.g. `"[a-z]{1,8}"`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling \\ in {pat:?}"));
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition"),
                    b.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..n {
                match &p.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                            .sum();
                        let mut k = rng.below(total);
                        for (a, b) in ranges {
                            let span = (*b as u64) - (*a as u64) + 1;
                            if k < span {
                                out.push(char::from_u32(*a as u32 + k as u32).unwrap());
                                break;
                            }
                            k -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals() {
        let mut rng = TestRng::new(2);
        assert_eq!("abc".sample(&mut rng), "abc");
    }
}
