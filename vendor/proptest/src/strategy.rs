//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampling function.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts (bounded; panics if the filter never
    /// accepts).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no accepted value in 10000 draws");
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

/// Builds a [`Union`]; used by the `prop_oneof!` macro.
pub fn union_of<V>(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $via).wrapping_sub(self.start as $via) as u128;
                let off = (rng.next_u64() as u128 % span) as $via;
                (self.start as $via).wrapping_add(off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $via).wrapping_sub(lo as $via) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as $via;
                (lo as $via).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
