//! Offline mini-proptest.
//!
//! The container image has no crates.io access, so this crate reimplements
//! the slice of the proptest API the workspace uses: the `proptest!` macro
//! with `pattern in strategy` parameters, `any::<T>()`, numeric-range and
//! string-pattern strategies, tuples, `prop_map`, `prop_oneof!`, `Just`,
//! `proptest::collection::vec`, `prop_assert*`, `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! * **No shrinking** — a failing case reports its values (via the
//!   pattern bindings' `Debug` where the test formats them) and the case
//!   number, but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test name and case index, so runs are reproducible without a
//!   `proptest-regressions` file (existing regression files are ignored).
//! * `any::<f64>()` generates finite values only (like real proptest's
//!   default float strategy, which excludes NaN and infinities).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Binds one `pat in strategy` parameter list entry after another.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    ($rng:ident; ()) => {};
    ($rng:ident; ($pat:pat in $strat:expr)) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; ($pat:pat in $strat:expr, $($rest:tt)*)) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__pt_bind!($rng; ($($rest)*));
    };
}

/// Expands the test functions inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident $params:tt $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __base = $crate::test_runner::fnv1a(stringify!($name));
            let mut __case: u32 = 0;
            let mut __attempt: u64 = 0;
            let __max_attempts = (__cfg.cases as u64) * 16 + 256;
            while __case < __cfg.cases {
                if __attempt >= __max_attempts {
                    panic!(
                        "proptest stub: too many rejected cases in `{}` ({} accepted of {} wanted)",
                        stringify!($name), __case, __cfg.cases
                    );
                }
                let mut __rng =
                    $crate::test_runner::TestRng::new(__base ^ (__attempt.wrapping_mul(0x9E3779B97F4A7C15)));
                __attempt += 1;
                let __rng = &mut __rng;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__pt_bind!(__rng; $params);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    Ok(()) => __case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of `{}` failed (seed attempt {}): {}",
                            __case, stringify!($name), __attempt - 1, msg
                        );
                    }
                }
            }
        }
        $crate::__pt_tests!{ @cfg ($cfg) $($rest)* }
    };
}

/// The `proptest!` block macro: runs each contained `#[test]` function
/// over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__pt_tests!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__pt_tests!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {:?} != {:?}", __l, __r),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: {:?} != {:?}", format!($($fmt)+), __l, __r),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {:?} == {:?}", __l, __r),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (it is regenerated, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![$($crate::strategy::boxed($s)),+])
    };
}
