//! `any::<T>()` and the `Arbitrary` trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards structurally interesting values (bounds,
                // small numbers) like real proptest's integer strategies.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0,
            1 => u128::MAX,
            2 => rng.next_u64() as u128 % 16,
            3 => rng.next_u64() as u128,
            _ => ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128,
        }
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values only, like real proptest's default `f64` strategy
    /// (no NaN / infinities).
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            // Random bits with the exponent kept out of the all-ones
            // (inf/NaN) pattern.
            let bits = rng.next_u64();
            let v = f64::from_bits(bits);
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + (rng.below(95)) as u8) as char
        }
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
