//! Offline mini-criterion.
//!
//! The container image has no crates.io access, so this crate implements
//! the slice of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::bench_with_input`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Behaviour: under `cargo bench` each benchmark is warmed up briefly,
//! then timed for a short budget and reported as mean ns/iter. Under
//! `cargo test` (which runs `harness = false` bench targets with the
//! `--test` flag) each benchmark body runs exactly once, matching real
//! criterion's test mode. Positional CLI args act as substring filters
//! on benchmark names.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterised benchmark: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times a routine.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Mean time per iteration from the last `iter` call, if measured.
    last_mean_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value live via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.settings.test_mode {
            black_box(routine());
            return;
        }
        // Warm up until the routine has run for ~10% of the budget.
        let warmup = self.settings.budget / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let measure_budget = self.settings.budget.as_secs_f64();
        let iters = ((measure_budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_mean_ns = Some(total.as_nanos() as f64 / iters as f64);
    }
}

struct Settings {
    test_mode: bool,
    budget: Duration,
    filters: Vec<String>,
}

impl Settings {
    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

/// The benchmark driver.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings {
                test_mode: false,
                budget: Duration::from_millis(300),
                filters: Vec::new(),
            },
        }
    }
}

impl Criterion {
    /// Builds a driver configured from the process CLI arguments.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.settings.test_mode = true,
                // Harness flags cargo may pass through; ignore.
                s if s.starts_with('-') => {}
                s => c.settings.filters.push(s.to_string()),
            }
        }
        c
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.settings.matches(name) {
            return;
        }
        let mut b = Bencher {
            settings: &self.settings,
            last_mean_ns: None,
        };
        f(&mut b);
        if self.settings.test_mode {
            println!("test {name} ... ok");
        } else if let Some(ns) = b.last_mean_ns {
            println!("{name:<48} {:>14.1} ns/iter", ns);
        }
    }

    /// Runs a named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Runs a parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.full.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-size knob; accepted for API compatibility, not used by the
    /// stub's fixed-budget measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs `group/<id>` with an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $(
                $target(c);
            )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $(
                $group(&mut c);
            )+
        }
    };
}
