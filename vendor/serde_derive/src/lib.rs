//! Offline stub of `serde_derive`.
//!
//! The container image has no crates.io access, so serde support is
//! vendored as *marker traits* (see the sibling `serde` stub). This
//! derive macro emits an empty `impl` of the marker trait for the
//! annotated type — enough for `#[derive(Serialize, Deserialize)]` to
//! compile everywhere. Real serialization in this repo is hand-rolled
//! (see `peerwindow-transport::codec` and the bench JSON writer).
//!
//! Limitation: generic types are not supported (nothing in the workspace
//! derives serde traits on a generic type). The macro panics with a clear
//! message if it meets one, so the gap is loud, not silent.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the input");
}

/// Panics if the type is generic (unsupported by the stub).
fn reject_generics(input: &TokenStream, name: &str) {
    let mut saw_name = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == name => saw_name = true,
            TokenTree::Punct(p) if saw_name => {
                if p.as_char() == '<' {
                    panic!(
                        "serde_derive stub: generic type `{name}` is unsupported; \
                         write the marker impl by hand"
                    );
                }
                break;
            }
            TokenTree::Group(_) if saw_name => break,
            _ => {}
        }
    }
}

fn empty_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let name = type_name(&input);
    reject_generics(&input, &name);
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .expect("stub impl must parse")
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize")
}
