//! Offline stub of `serde_json`.
//!
//! No code in the workspace calls serde_json today — JSON output (e.g.
//! `BENCH_*.json`) is written by the small hand-rolled writer in
//! `peerwindow-bench`. This stub only exists so `Cargo.toml` dependency
//! edges resolve without network access. If a future PR needs real JSON
//! (de)serialization, either extend this stub or restore the real crate.

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn escapes() {
        assert_eq!(super::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
