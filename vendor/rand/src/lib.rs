//! Offline stub of the `rand` crate.
//!
//! The container image has no crates.io access, so the workspace vendors
//! the subset of `rand` 0.8 it uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and the `SmallRng`/`StdRng` generator
//! types. Both generators are SplitMix64 — deterministic, fast, and good
//! enough for simulation workloads (this is NOT a cryptographic RNG).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` (matches `rand`'s `Standard` for floats).
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random-number interface.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 state shared by both stub generators.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl RngCore for SplitMix64 {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SplitMix64 {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }
    }

    /// Small, fast generator (stub: SplitMix64).
    pub type SmallRng = SplitMix64;
    /// "Standard" generator (stub: SplitMix64; NOT cryptographic).
    pub type StdRng = SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        for _ in 0..1000 {
            let x: u8 = a.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = a.gen_range(0..=5u32);
            assert!(y <= 5);
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let i = a.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }
}
