//! Offline stub of `serde`.
//!
//! The container image has no crates.io access. The workspace only *tags*
//! types with `#[derive(Serialize, Deserialize)]` — it never drives a
//! serde serializer (wire encoding is hand-rolled in
//! `peerwindow-transport::codec`, JSON output in the bench harness). So
//! the stub reduces the traits to markers and the derives to empty
//! impls, keeping every annotation compiling until the real crate can be
//! restored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize {}
