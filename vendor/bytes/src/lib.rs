//! Offline stub of the `bytes` crate.
//!
//! The container image has no crates.io access, so the workspace vendors
//! the *subset* of `bytes` it actually uses: an immutable, cheaply
//! clonable byte buffer. Static slices are kept as-is (zero-copy); owned
//! data is reference-counted. The API is call-compatible with the real
//! crate for everything PeerWindow touches, so swapping the real `bytes`
//! back in is a one-line Cargo change.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The underlying bytes.
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    #[inline]
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Repr::Shared(Arc::from(b)))
    }
}

impl From<String> for Bytes {
    #[inline]
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7F).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert_eq!(&s[..], b"hello");
        let v = Bytes::from(vec![1u8, 2, 3]);
        let w = v.clone();
        assert_eq!(v, w);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"ab"), Bytes::from_static(b"ab"));
    }
}
