//! # peerwindow
//!
//! Facade crate for the PeerWindow workspace — a reproduction of
//! *"PeerWindow: An Efficient, Heterogeneous, and Autonomic Node
//! Collection Protocol"* (Hu, Li, Yu, Dong, Zheng — ICPP 2005).
//!
//! * [`protocol`] — the sans-IO protocol implementation.
//! * [`sim`] — full-fidelity and oracle-mode simulation.
//! * [`des`] — the discrete-event engines (sequential + parallel).
//! * [`faults`] — deterministic network fault injection (burst loss,
//!   jitter, duplication, link failure, partitions).
//! * [`topology`] — transit-stub Internet model.
//! * [`workload`] — Gnutella-calibrated churn.
//! * [`baselines`] — explicit probing, gossip, one-hop DHT.
//! * [`metrics`] — statistics and table/CSV reporting.
//! * [`apps`] — §3 application helpers (typed info, bloom filters,
//!   selection queries).
//!
//! See `examples/quickstart.rs` for a first contact, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

pub use peerwindow_apps as apps;
pub use peerwindow_baselines as baselines;
pub use peerwindow_core as protocol;
pub use peerwindow_core::prelude;
pub use peerwindow_des as des;
pub use peerwindow_faults as faults;
pub use peerwindow_metrics as metrics;
pub use peerwindow_sim as sim;
pub use peerwindow_topology as topology;
pub use peerwindow_workload as workload;
